// Batched and streaming operators: multi-tile batch GET/PUT, the
// layout-aware streaming range scan, and pushed-down reductions. These
// are the serving-plane answer to ROADMAP item 4 — aggregate traffic
// should move bytes-out, not tiles-out, and a range read should cost
// one round-trip planned from the array's layout hyperplane instead of
// one HTTP request per tile.
//
//	POST /v1/arrays/{name}/batch    many GET/PUT boxes, one admission
//	                                slot, per-op status (partial
//	                                failure is explicit, not a 500)
//	GET  /v1/arrays/{name}/scan     streaming range scan: CRC-framed
//	                                chunks over chunked transfer
//	                                encoding, visit order planned via
//	                                layout.PlanScan, resumable by the
//	                                opaque cursor each frame carries
//	POST /v1/arrays/{name}/reduce   sum/min/max/count over a box,
//	                                folded tile-side, scalar out
//
// Consistency: every batch op and every scan chunk takes the array's
// tile lock exactly as the single-tile handlers do (ops and chunks are
// individually atomic against concurrent PUTs; the stream as a whole
// is not a snapshot). A scan chunk's payload is byte-identical to a
// tile GET of the chunk's box, batch ops are identical to the same
// boxes issued one request at a time, and a reduce equals the
// client-side row-major fold over a plain GET — the differential
// contract the conformance suite replays.
package server

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/ooc"
)

// Scan wire format: a sequence of little-endian frames, one per chunk,
// closed by a trailer frame.
//
//	[0:4)   magic "OCS1"
//	[4:8)   flags (bit 0: payload is a codec frame; bit 1: trailer)
//	[8:16)  seq — chunk index in the plan; on the trailer, the plan length
//	[16:20) rank
//	[20:24) cursor length in bytes
//	[24:28) payload length in bytes
//	then    lo[rank] int64, hi[rank] int64
//	then    cursor bytes — resumes the scan AFTER this chunk
//	then    payload bytes — box-local row-major float64, raw or codec frame
//	then    CRC-32C over everything above
//
// A client that stops mid-stream resumes by presenting the cursor of
// the last frame whose CRC checked out; the plan is a pure function of
// (layout, box, chunk size), so the resumed scan continues at exactly
// the next chunk — never skipping, never double-delivering.
const (
	// ScanContentType marks a scan response body.
	ScanContentType = "application/x-ooc-scan"
	// DefaultScanChunkElems is the chunk size when ?chunk is absent.
	DefaultScanChunkElems = int64(1) << 16

	scanMagic          = 0x3153434f // "OCS1" little-endian
	scanFlagCompressed = 1 << 0
	scanFlagTrailer    = 1 << 1
	scanHeaderLen      = 28
	maxScanRank        = 64
	maxScanCursorLen   = 4096

	// maxBatchOps caps one batch request's op list.
	maxBatchOps = 4096
	// maxBatchBody caps the batch request body read.
	maxBatchBody = int64(1) << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// opsMetrics are the batch/scan/reduce registry series.
type opsMetrics struct {
	batchRequests  *obs.Counter
	batchOps       *obs.Counter
	batchOpErrors  *obs.Counter
	scanRequests   *obs.Counter
	scanChunks     *obs.Counter
	scanResumes    *obs.Counter
	reduceRequests *obs.Counter
	reduceElems    *obs.Counter
}

// ---------------------------------------------------------------------------
// Batch

// batchOp is one entry of a batch request: "get" returns the box's
// bytes, "put" writes them. Data is base64 of the raw little-endian
// float64 payload (JSON numbers would lose NaN/Inf and bit-exactness).
// Gen, when non-zero on a put, generation-gates the write exactly like
// the X-Tile-Gen header on a single-tile PUT.
type batchOp struct {
	Op   string  `json:"op"`
	Lo   []int64 `json:"lo"`
	Hi   []int64 `json:"hi"`
	Data string  `json:"data_b64,omitempty"`
	Gen  uint64  `json:"gen,omitempty"`
}

type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

// batchResult reports one op's outcome with single-tile semantics:
// 200 a get served, 204 a put applied, 4xx the op was rejected. The
// batch as a whole answers 200 whenever it was well-formed enough to
// run — per-op status is the partial-failure contract.
type batchResult struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	Elems  int64  `json:"elems,omitempty"`
	Data   string `json:"data_b64,omitempty"`
	Gen    uint64 `json:"gen,omitempty"`
	Stale  bool   `json:"stale,omitempty"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
	Failed  int           `json:"failed"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ar := s.disk.ArrayByName(r.PathValue("name"))
	if ar == nil {
		httpError(w, http.StatusNotFound, "no array %q", r.PathValue("name"))
		return
	}
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one op")
		return
	}
	if len(req.Ops) > maxBatchOps {
		httpError(w, http.StatusBadRequest, "batch of %d ops over the limit of %d", len(req.Ops), maxBatchOps)
		return
	}
	s.met.ops.batchRequests.Inc()
	tenant := TenantOf(r)
	resp := batchResponse{Results: make([]batchResult, len(req.Ops))}
	for i, op := range req.Ops {
		// Each op counts against the tenant's in-flight chunk cap, so a
		// wide batch shares engine capacity like a scan's chunk train
		// instead of monopolizing it from inside one admission slot.
		chunkDone, ok := s.tenants.AcquireChunk(r.Context(), tenant)
		if !ok {
			resp.Results[i] = batchResult{Status: http.StatusServiceUnavailable, Error: "request canceled"}
			resp.Failed++
			continue
		}
		resp.Results[i] = s.batchOne(ar, op, tenant)
		chunkDone()
		s.met.ops.batchOps.Inc()
		if resp.Results[i].Status >= 400 {
			s.met.ops.batchOpErrors.Inc()
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchOne runs one op with exactly the single-tile handlers'
// semantics: the same box validation and limits, the same per-array
// lock discipline, the same generation merge, and — under DurablePuts
// — the same flush-before-ack durability for every applied put.
func (s *Server) batchOne(ar *ooc.Array, op batchOp, tenant string) batchResult {
	box, status, msg := s.resolveBox(ar, op.Lo, op.Hi)
	if status != 0 {
		return batchResult{Status: status, Error: msg}
	}
	switch op.Op {
	case "get":
		payload, gen, err := s.readBoxPayload(ar, box)
		if err != nil {
			return s.batchEngineError(err)
		}
		s.meterWire(tenant, box.Size()*ooc.ElemSize, int64(len(payload)))
		return batchResult{
			Status: http.StatusOK,
			Elems:  box.Size(),
			Data:   base64.StdEncoding.EncodeToString(payload),
			Gen:    gen,
		}
	case "put":
		raw, err := base64.StdEncoding.DecodeString(op.Data)
		if err != nil {
			return batchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("bad data_b64: %v", err)}
		}
		if int64(len(raw)) != box.Size()*ooc.ElemSize {
			return batchResult{Status: http.StatusBadRequest,
				Error: fmt.Sprintf("payload of %d bytes, want %d for %v", len(raw), box.Size()*ooc.ElemSize, box)}
		}
		data := ooc.GetF64(int(box.Size()))
		defer ooc.PutF64(data)
		decodePayload(raw, data)
		s.meterWire(tenant, box.Size()*ooc.ElemSize, int64(len(raw)))
		stored, stale, err := s.applyPut(ar, box, data, op.Gen, op.Gen != 0)
		if err != nil {
			return s.batchEngineError(err)
		}
		res := batchResult{Status: http.StatusNoContent, Elems: box.Size(), Stale: stale}
		if op.Gen != 0 {
			res.Gen = stored
		}
		return res
	default:
		return batchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown op %q (get, put)", op.Op)}
	}
}

// batchEngineError maps an engine failure onto a per-op status the
// same way engineError maps it onto a response.
func (s *Server) batchEngineError(err error) batchResult {
	if err == ooc.ErrEngineClosed {
		return batchResult{Status: http.StatusServiceUnavailable, Error: "engine closed"}
	}
	s.met.errors.Inc()
	return batchResult{Status: http.StatusInternalServerError, Error: err.Error()}
}

// resolveBox validates lo/hi against the array exactly as tileTarget
// does for query params, returning a non-zero HTTP status on failure.
func (s *Server) resolveBox(ar *ooc.Array, lo, hi []int64) (layout.Box, int, string) {
	rank := len(ar.Meta.Dims)
	if len(lo) != rank || len(hi) != rank {
		return layout.Box{}, http.StatusBadRequest,
			fmt.Sprintf("box rank %d/%d, array rank %d", len(lo), len(hi), rank)
	}
	for d := range lo {
		if lo[d] < 0 {
			return layout.Box{}, http.StatusBadRequest, fmt.Sprintf("negative coordinate %d", lo[d])
		}
		if hi[d] < lo[d] {
			return layout.Box{}, http.StatusBadRequest,
				fmt.Sprintf("hi[%d]=%d below lo[%d]=%d", d, hi[d], d, lo[d])
		}
	}
	box := layout.NewBox(lo, hi).Clip(ar.Meta.Dims)
	if box.Empty() {
		return layout.Box{}, http.StatusBadRequest,
			fmt.Sprintf("box %v is empty after clipping to %v", layout.NewBox(lo, hi), ar.Meta.Dims)
	}
	if lim := s.cfg.MaxTileElems; lim > 0 && box.Size() > lim {
		return layout.Box{}, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("box %v holds %d elements, over the per-op limit of %d", box, box.Size(), lim)
	}
	return box, 0, ""
}

// readBoxPayload reads one box under the shared tile lock and returns
// its raw payload and write generation — the batch-get twin of the
// tile GET flight body (batch gets don't coalesce; the batch itself is
// the amortization).
func (s *Server) readBoxPayload(ar *ooc.Array, box layout.Box) ([]byte, uint64, error) {
	lk := s.lockFor(ar.Meta.Name)
	lk.mu.RLock()
	defer lk.mu.RUnlock()
	h, err := s.eng.Acquire(ar, box)
	if err != nil {
		return nil, 0, err
	}
	defer s.eng.Release(h, false)
	return encodePayload(h.Tile().Data()), lk.overlapGen(box), nil
}

// applyPut lands one decoded write with the single-tile PUT's exact
// semantics: per-cell LWW generation merge under the exclusive lock,
// flight-key versioning, and flush-before-ack under DurablePuts.
// Returns the stored generation and whether the write was wholly
// superseded (stale).
func (s *Server) applyPut(ar *ooc.Array, box layout.Box, src []float64, gen uint64, genGated bool) (uint64, bool, error) {
	lk := s.lockFor(ar.Meta.Name)
	lk.mu.Lock()
	var apply []layout.Box // nil: the whole box; non-nil: the merge remainder
	if genGated {
		if newer := lk.newerOverlaps(box, gen); len(newer) > 0 {
			if apply = subtractBoxes(box, newer); len(apply) == 0 {
				stored := lk.overlapGen(box)
				lk.mu.Unlock()
				return stored, true, nil
			}
		}
	}
	h, err := s.eng.Acquire(ar, box)
	if err != nil {
		lk.mu.Unlock()
		return 0, false, err
	}
	if apply == nil {
		copy(h.Tile().Data(), src)
	} else {
		for _, region := range apply {
			copyBoxLocal(h.Tile().Data(), src, box, region)
		}
	}
	s.eng.Release(h, true)
	if genGated {
		lk.setGen(box.String(), box, gen)
	}
	lk.gen.Add(1)
	lk.mu.Unlock()
	if s.cfg.DurablePuts {
		if err := s.eng.FlushOverlapping(ar, box); err != nil {
			return 0, false, err
		}
		if err := ar.Sync(); err != nil {
			return 0, false, err
		}
	}
	return gen, false, nil
}

// ---------------------------------------------------------------------------
// Scan

// ScanCursor is the decoded resume token: enough to re-derive the plan
// (which is a pure function of layout, box and chunk size) plus the
// next chunk index to serve. Exported because the router parses and
// mints the same tokens against its catalog.
type ScanCursor struct {
	Name       string
	Box        layout.Box
	ChunkElems int64
	Layout     string
	Seq        uint64
}

// EncodeScanCursor renders an opaque resume token. Exported for the
// router, the load harness and tests; clients normally just echo the
// cursor a frame carried.
func EncodeScanCursor(name string, box layout.Box, chunkElems int64, layoutName string, seq uint64) string {
	plain := fmt.Sprintf("ooc-scan/1|%s|%s|%s|%d|%s|%d",
		name, coordList(box.Lo), coordList(box.Hi), chunkElems, layoutName, seq)
	sum := crc32.Checksum([]byte(plain), castagnoli)
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%s|%08x", plain, sum)))
}

// ParseScanCursor validates and decodes a token. Every malformation is
// an error (the handlers answer 400): wrong base64, wrong field count,
// bad checksum, unknown version, non-numeric fields, negative or
// reversed coordinates.
func ParseScanCursor(token string) (ScanCursor, error) {
	var c ScanCursor
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return c, fmt.Errorf("bad cursor encoding: %v", err)
	}
	plain := string(raw)
	cut := strings.LastIndexByte(plain, '|')
	if cut < 0 {
		return c, fmt.Errorf("bad cursor: no checksum")
	}
	sum, err := strconv.ParseUint(plain[cut+1:], 16, 32)
	if err != nil {
		return c, fmt.Errorf("bad cursor checksum: %v", err)
	}
	if uint32(sum) != crc32.Checksum([]byte(plain[:cut]), castagnoli) {
		return c, fmt.Errorf("cursor checksum mismatch")
	}
	parts := strings.Split(plain[:cut], "|")
	if len(parts) != 7 || parts[0] != "ooc-scan/1" {
		return c, fmt.Errorf("bad cursor format")
	}
	lo, err := parseCoords(parts[2])
	if err != nil {
		return c, fmt.Errorf("bad cursor lo: %v", err)
	}
	hi, err := parseCoords(parts[3])
	if err != nil {
		return c, fmt.Errorf("bad cursor hi: %v", err)
	}
	if len(lo) != len(hi) || len(lo) > maxScanRank {
		return c, fmt.Errorf("bad cursor box rank")
	}
	for d := range lo {
		if hi[d] < lo[d] {
			return c, fmt.Errorf("bad cursor box: hi[%d] below lo[%d]", d, d)
		}
	}
	chunk, err := strconv.ParseInt(parts[4], 10, 64)
	if err != nil || chunk <= 0 {
		return c, fmt.Errorf("bad cursor chunk size %q", parts[4])
	}
	seq, err := strconv.ParseUint(parts[6], 10, 64)
	if err != nil {
		return c, fmt.Errorf("bad cursor seq %q", parts[6])
	}
	c.Name, c.Layout, c.ChunkElems, c.Seq = parts[1], parts[5], chunk, seq
	c.Box = layout.NewBox(lo, hi)
	return c, nil
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var (
		ar         *ooc.Array
		box        layout.Box
		chunkElems int64
		startSeq   uint64
	)
	if tok := q.Get("cursor"); tok != "" {
		cur, err := ParseScanCursor(tok)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ar = s.disk.ArrayByName(cur.Name)
		if ar == nil {
			httpError(w, http.StatusNotFound, "no array %q", cur.Name)
			return
		}
		if got := ar.Layout.Name(); got != cur.Layout {
			httpError(w, http.StatusBadRequest, "cursor layout %q does not match array layout %q", cur.Layout, got)
			return
		}
		clipped := cur.Box.Clip(ar.Meta.Dims)
		if clipped.Empty() || clipped.String() != cur.Box.String() {
			httpError(w, http.StatusBadRequest, "cursor box %v does not fit array dims %v", cur.Box, ar.Meta.Dims)
			return
		}
		box, chunkElems, startSeq = cur.Box, cur.ChunkElems, cur.Seq
		if lim := s.cfg.MaxTileElems; lim > 0 && chunkElems > lim {
			httpError(w, http.StatusBadRequest, "cursor chunk size %d over the per-request limit %d", chunkElems, lim)
			return
		}
		s.met.ops.scanResumes.Inc()
	} else {
		var ok bool
		ar, box, ok = s.scanTarget(w, r)
		if !ok {
			return
		}
		chunkElems = DefaultScanChunkElems
		if v := q.Get("chunk"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, "bad chunk size %q", v)
				return
			}
			chunkElems = n
		}
		if lim := s.cfg.MaxTileElems; lim > 0 && chunkElems > lim {
			chunkElems = lim
		}
	}
	plan := layout.PlanScan(ar.Layout, box, chunkElems)
	if startSeq > uint64(len(plan)) {
		httpError(w, http.StatusBadRequest, "cursor seq %d past the %d-chunk plan", startSeq, len(plan))
		return
	}
	s.met.ops.scanRequests.Inc()
	compress := acceptsWireEncoding(r.Header.Get("Accept-Encoding"))

	w.Header().Set("Content-Type", ScanContentType)
	w.Header().Set("X-Scan-Chunks", strconv.Itoa(len(plan)))
	w.Header().Set("X-Scan-Chunk-Elems", strconv.FormatInt(chunkElems, 10))
	flusher, _ := w.(http.Flusher)

	// One frame buffer for the whole stream: memory is bounded by the
	// chunk size, not the scan size.
	frame := ooc.GetBuf(int(chunkElems)*ooc.ElemSize + 256)[:0]
	defer ooc.PutBuf(frame)
	lk := s.lockFor(ar.Meta.Name)
	name, layoutName := ar.Meta.Name, ar.Layout.Name()
	tenant := TenantOf(r)
	for seq := startSeq; seq < uint64(len(plan)); seq++ {
		ch := plan[seq]
		// Each chunk claims one of the tenant's in-flight chunk slots
		// before touching the engine, and releases it before the next
		// chunk — so a scan's chunk train shares engine capacity at the
		// configured per-tenant width instead of arriving as fast as
		// the stream drains.
		chunkDone, ok := s.tenants.AcquireChunk(r.Context(), tenant)
		if !ok {
			return // client went away while the cap was saturated
		}
		// Each chunk is read under the shared lock exactly like a tile
		// GET of the chunk box; the lock is dropped between chunks so
		// writers are never starved by a long scan.
		lk.mu.RLock()
		h, err := s.eng.Acquire(ar, ch)
		if err != nil {
			lk.mu.RUnlock()
			chunkDone()
			if seq == startSeq {
				s.engineError(w, err)
			}
			// Mid-stream: the connection just ends short of the trailer;
			// the framing makes the truncation visible to the client.
			return
		}
		cursor := EncodeScanCursor(name, box, chunkElems, layoutName, seq+1)
		frame = AppendScanFrame(frame[:0], seq, ch, cursor, h.Tile().Data(), compress)
		s.eng.Release(h, false)
		lk.mu.RUnlock()
		chunkDone()

		if _, err := w.Write(frame); err != nil {
			return // client went away; it resumes from its last good cursor
		}
		s.met.ops.scanChunks.Inc()
		s.meterWire(tenant, ch.Size()*ooc.ElemSize, int64(len(frame)))
		if flusher != nil {
			flusher.Flush()
		}
	}
	frame = AppendScanTrailer(frame[:0], uint64(len(plan)))
	w.Write(frame)
}

// scanTarget resolves {name} + lo/hi like tileTarget but without the
// per-request element cap: a scan's memory is bounded by its chunk
// size, so the box may cover the whole array.
func (s *Server) scanTarget(w http.ResponseWriter, r *http.Request) (*ooc.Array, layout.Box, bool) {
	ar := s.disk.ArrayByName(r.PathValue("name"))
	if ar == nil {
		httpError(w, http.StatusNotFound, "no array %q", r.PathValue("name"))
		return nil, layout.Box{}, false
	}
	lo, err := parseCoords(r.URL.Query().Get("lo"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad lo: %v", err)
		return nil, layout.Box{}, false
	}
	hi, err := parseCoords(r.URL.Query().Get("hi"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad hi: %v", err)
		return nil, layout.Box{}, false
	}
	rank := len(ar.Meta.Dims)
	if len(lo) != rank || len(hi) != rank {
		httpError(w, http.StatusBadRequest, "box rank %d/%d, array rank %d", len(lo), len(hi), rank)
		return nil, layout.Box{}, false
	}
	for d := range lo {
		if hi[d] < lo[d] {
			httpError(w, http.StatusBadRequest, "hi[%d]=%d below lo[%d]=%d", d, hi[d], d, lo[d])
			return nil, layout.Box{}, false
		}
	}
	box := layout.NewBox(lo, hi).Clip(ar.Meta.Dims)
	if box.Empty() {
		httpError(w, http.StatusBadRequest, "box %v is empty after clipping to %v", layout.NewBox(lo, hi), ar.Meta.Dims)
		return nil, layout.Box{}, false
	}
	return ar, box, true
}

// AppendScanFrame renders one data frame (see the wire format above),
// encoding data — the chunk's box-local row-major elements — raw or as
// a codec frame. Exported so the router emits the same stream.
func AppendScanFrame(dst []byte, seq uint64, box layout.Box, cursor string, data []float64, compress bool) []byte {
	flags := uint32(0)
	if compress {
		flags |= scanFlagCompressed
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, scanMagic)
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(box.Rank()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cursor)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // payload length, backfilled
	for _, v := range box.Lo {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range box.Hi {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	dst = append(dst, cursor...)
	pstart := len(dst)
	if compress {
		dst = ooc.AppendFrame(dst, data)
	} else {
		dst = appendPayload(dst, data)
	}
	binary.LittleEndian.PutUint32(dst[start+24:], uint32(len(dst)-pstart))
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// AppendScanTrailer renders the stream-closing trailer frame carrying
// the plan length.
func AppendScanTrailer(dst []byte, total uint64) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, scanMagic)
	dst = binary.LittleEndian.AppendUint32(dst, scanFlagTrailer)
	dst = binary.LittleEndian.AppendUint64(dst, total)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // rank
	dst = binary.LittleEndian.AppendUint32(dst, 0) // cursor length
	dst = binary.LittleEndian.AppendUint32(dst, 0) // payload length
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// appendPayload appends the raw wire form of data (little-endian
// float64) to dst — encodePayload without the allocation.
func appendPayload(dst []byte, data []float64) []byte {
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// ScanChunk is one decoded frame of a scan stream.
type ScanChunk struct {
	Seq    uint64
	Box    layout.Box
	Cursor string    // resumes the scan after this chunk
	Data   []float64 // box-local row-major, already decompressed
}

// ScanReader decodes a scan stream frame by frame. Next returns io.EOF
// after the trailer; any torn or corrupted frame is an error, so a
// consumer knows exactly which chunks arrived intact and which cursor
// to resume from.
type ScanReader struct {
	r     io.Reader
	total uint64
	done  bool
}

// NewScanReader wraps a scan response body.
func NewScanReader(r io.Reader) *ScanReader { return &ScanReader{r: r} }

// Total returns the plan length reported by the trailer (valid after
// Next returned io.EOF).
func (sr *ScanReader) Total() uint64 { return sr.total }

// Next decodes the next chunk. io.EOF means the stream completed with
// an intact trailer; io.ErrUnexpectedEOF means it was cut mid-frame.
func (sr *ScanReader) Next() (*ScanChunk, error) {
	if sr.done {
		return nil, io.EOF
	}
	var hdr [scanHeaderLen]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF // no trailer seen
		}
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != scanMagic {
		return nil, fmt.Errorf("scan frame: bad magic")
	}
	flags := binary.LittleEndian.Uint32(hdr[4:])
	seq := binary.LittleEndian.Uint64(hdr[8:])
	rank := binary.LittleEndian.Uint32(hdr[16:])
	cursorLen := binary.LittleEndian.Uint32(hdr[20:])
	payloadLen := binary.LittleEndian.Uint32(hdr[24:])
	if rank > maxScanRank || cursorLen > maxScanCursorLen {
		return nil, fmt.Errorf("scan frame: implausible rank %d / cursor %d", rank, cursorLen)
	}
	rest := make([]byte, int(rank)*16+int(cursorLen)+int(payloadLen)+4)
	if _, err := io.ReadFull(sr.r, rest); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, rest[:len(rest)-4])
	if crc != binary.LittleEndian.Uint32(rest[len(rest)-4:]) {
		return nil, fmt.Errorf("scan frame %d: CRC mismatch", seq)
	}
	if flags&scanFlagTrailer != 0 {
		sr.done, sr.total = true, seq
		return nil, io.EOF
	}
	lo := make([]int64, rank)
	hi := make([]int64, rank)
	for d := range lo {
		lo[d] = int64(binary.LittleEndian.Uint64(rest[d*8:]))
	}
	for d := range hi {
		hi[d] = int64(binary.LittleEndian.Uint64(rest[int(rank)*8+d*8:]))
	}
	box := layout.NewBox(lo, hi)
	cursor := string(rest[int(rank)*16 : int(rank)*16+int(cursorLen)])
	payload := rest[int(rank)*16+int(cursorLen) : len(rest)-4]
	data := make([]float64, box.Size())
	if flags&scanFlagCompressed != 0 {
		n, err := ooc.DecodeFrame(payload, data)
		if err == nil && n != len(payload) {
			err = fmt.Errorf("%d trailing bytes", len(payload)-n)
		}
		if err != nil {
			return nil, fmt.Errorf("scan frame %d: %v", seq, err)
		}
	} else {
		if int64(len(payload)) != box.Size()*ooc.ElemSize {
			return nil, fmt.Errorf("scan frame %d: %d payload bytes for %d elements", seq, len(payload), box.Size())
		}
		decodePayload(payload, data)
	}
	return &ScanChunk{Seq: seq, Box: box, Cursor: cursor, Data: data}, nil
}

// ---------------------------------------------------------------------------
// Reduce

// reduceRequest asks for a scalar over a box. Ops: sum, min, max,
// count.
type reduceRequest struct {
	Op string  `json:"op"`
	Lo []int64 `json:"lo"`
	Hi []int64 `json:"hi"`
}

// reduceResponse carries the scalar. Value is omitted when the result
// is not finite (JSON has no NaN/Inf); Bits — Float64bits of the
// result — is always present and bit-exact, and is what the router and
// the conformance suite compare.
type reduceResponse struct {
	Op    string   `json:"op"`
	Lo    []int64  `json:"lo"`
	Hi    []int64  `json:"hi"`
	Count int64    `json:"count"`
	Value *float64 `json:"value,omitempty"`
	Bits  uint64   `json:"value_bits"`
}

// reduceOps are the supported folds. Sum accumulates in box-local
// row-major element order — exactly the order a client folding a plain
// GET's payload would use — so a single-node reduce is bit-identical
// to the client-side fold, not merely close.
var reduceOps = map[string]bool{"sum": true, "min": true, "max": true, "count": true}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	ar := s.disk.ArrayByName(r.PathValue("name"))
	if ar == nil {
		httpError(w, http.StatusNotFound, "no array %q", r.PathValue("name"))
		return
	}
	var req reduceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad reduce body: %v", err)
		return
	}
	if !reduceOps[req.Op] {
		httpError(w, http.StatusBadRequest, "unknown reduce op %q (sum, min, max, count)", req.Op)
		return
	}
	rank := len(ar.Meta.Dims)
	if len(req.Lo) != rank || len(req.Hi) != rank {
		httpError(w, http.StatusBadRequest, "box rank %d/%d, array rank %d", len(req.Lo), len(req.Hi), rank)
		return
	}
	for d := range req.Lo {
		if req.Lo[d] < 0 || req.Hi[d] < req.Lo[d] {
			httpError(w, http.StatusBadRequest, "bad box dimension %d: [%d,%d)", d, req.Lo[d], req.Hi[d])
			return
		}
	}
	box := layout.NewBox(req.Lo, req.Hi).Clip(ar.Meta.Dims)
	if box.Empty() {
		httpError(w, http.StatusBadRequest, "box %v is empty after clipping to %v", layout.NewBox(req.Lo, req.Hi), ar.Meta.Dims)
		return
	}
	s.met.ops.reduceRequests.Inc()
	value, count, err := s.reduceBox(ar, box, req.Op)
	if err != nil {
		s.engineError(w, err)
		return
	}
	s.met.ops.reduceElems.Add(count)
	resp := reduceResponse{Op: req.Op, Lo: box.Lo, Hi: box.Hi, Count: count, Bits: math.Float64bits(value)}
	if !math.IsNaN(value) && !math.IsInf(value, 0) {
		resp.Value = &value
	}
	writeJSON(w, http.StatusOK, resp)
}

// reduceBox folds the box tile-side, chunked through the engine so a
// whole-array reduce stays within cache memory. Chunks are row-major
// slabs regardless of layout: the fold must visit elements in the
// box's row-major order for sum exactness (the engine underneath still
// does layout-aware backend I/O per chunk).
func (s *Server) reduceBox(ar *ooc.Array, box layout.Box, op string) (float64, int64, error) {
	chunk := DefaultScanChunkElems
	if lim := s.cfg.MaxTileElems; lim > 0 && chunk > lim {
		chunk = lim
	}
	lk := s.lockFor(ar.Meta.Name)
	var (
		sum   float64
		minV  = math.Inf(1)
		maxV  = math.Inf(-1)
		count int64
	)
	for _, ch := range layout.PlanRowMajor(box, chunk) {
		lk.mu.RLock()
		h, err := s.eng.Acquire(ar, ch)
		if err != nil {
			lk.mu.RUnlock()
			return 0, 0, err
		}
		data := h.Tile().Data()
		switch op {
		case "sum":
			for _, v := range data {
				sum += v
			}
		case "min":
			for _, v := range data {
				if v < minV {
					minV = v
				}
			}
		case "max":
			for _, v := range data {
				if v > maxV {
					maxV = v
				}
			}
		}
		count += int64(len(data))
		s.eng.Release(h, false)
		lk.mu.RUnlock()
	}
	switch op {
	case "sum":
		return sum, count, nil
	case "min":
		return minV, count, nil
	case "max":
		return maxV, count, nil
	default: // count
		return float64(count), count, nil
	}
}
