package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"outcore/internal/obs"
	"outcore/internal/ooc"
)

var update = flag.Bool("update", false, "rewrite the golden schema files from the live responses")

// goldenServer builds a fully-observed stack (disk, engine, and server
// sharing one sink) so /metrics exposes every family a production occd
// would, then runs enough traffic to touch each counter's code path.
func goldenServer(t *testing.T) *testServer {
	t.Helper()
	// Built by hand rather than via newTestServer: the sink must reach
	// the disk, the engine, AND the server — exactly as cmd/occd wires
	// them — so every production metric family shows up.
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ts := &testServer{}
	d := ooc.NewDisk(0).Observe(sink)
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16, Obs: sink})
	ts.disk = d
	ts.srv = New(d, eng, Config{Obs: sink})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	ts.createArray(t, "A", 8, 8)
	payload := make([]float64, 16)
	if status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), encodePayload(payload)); status != http.StatusNoContent {
		t.Fatalf("seed put: %d %s", status, out)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), nil); status != 200 {
		t.Fatal("seed get failed")
	}
	return ts
}

// goldenShardedServer is goldenServer with the engine swapped for a
// two-shard plane — the wiring cmd/occd builds for -shards 2 — so the
// goldens pin the per-shard /v1/stats scorecard and the labeled
// ooc_shard_* metric families.
func goldenShardedServer(t *testing.T) *testServer {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ts := &testServer{}
	d := ooc.NewDisk(0).Observe(sink)
	eng := BuildEngine(d, 2, ooc.EngineOptions{Workers: 2, CacheTiles: 16, Obs: sink})
	ts.disk = d
	ts.srv = New(d, eng, Config{Obs: sink})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	ts.createArray(t, "A", 8, 8)
	payload := make([]float64, 16)
	if status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), encodePayload(payload)); status != http.StatusNoContent {
		t.Fatalf("seed put: %d %s", status, out)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), nil); status != 200 {
		t.Fatal("seed get failed")
	}
	return ts
}

// goldenWALServer is goldenServer with the write-ahead log enabled and
// durable PUTs on — the wiring cmd/occd builds for -wal -durable-puts —
// so the goldens pin the /v1/stats wal scorecard and the ooc_wal_*
// metric families. The seed PUT rides the durable path: its 204 means a
// group commit ran, so every WAL counter's code path has fired.
func goldenWALServer(t *testing.T) *testServer {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ts := &testServer{}
	d := ooc.NewDisk(0).Observe(sink)
	d.EnableWAL(ooc.WALOptions{Logs: 2, Obs: sink})
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16, Obs: sink})
	ts.disk = d
	ts.srv = New(d, eng, Config{DurablePuts: true, Obs: sink})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	ts.createArray(t, "A", 8, 8)
	payload := make([]float64, 16)
	if status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), encodePayload(payload)); status != http.StatusNoContent {
		t.Fatalf("seed put: %d %s", status, out)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), nil); status != 200 {
		t.Fatal("seed get failed")
	}
	return ts
}

// goldenTenantServer is goldenServer with the tenant plane configured
// — the wiring cmd/occd builds for -tenant-weights/-tenant-quota-* —
// so the goldens pin the per-tenant /v1/stats scorecard and the
// occd_tenant_* metric families. Seed traffic runs as tenant
// "interactive"; "batch" is weighted but idle, pinning the families
// that eager registration exposes before a tenant's first request.
func goldenTenantServer(t *testing.T) *testServer {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ts := &testServer{}
	d := ooc.NewDisk(0).Observe(sink)
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16, Obs: sink})
	ts.disk = d
	ts.srv = New(d, eng, Config{Obs: sink, Tenants: TenantConfig{
		Weights:          map[string]float64{"batch": 1, "interactive": 4},
		QuotaBytesPerSec: 1 << 30,
		QuotaRPS:         1000,
		MaxScanInflight:  2,
	}})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	ts.createArray(t, "A", 8, 8)
	payload := make([]float64, 16)
	if status, out := ts.doAsTenant(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), "interactive", encodePayload(payload)); status != http.StatusNoContent {
		t.Fatalf("seed put: %d %s", status, out)
	}
	if status, _ := ts.doAsTenant(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), "interactive", nil); status != 200 {
		t.Fatal("seed get failed")
	}
	return ts
}

// doAsTenant is ts.do with the request billed to a tenant.
func (ts *testServer) doAsTenant(t *testing.T, method, url, tenant string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// keyPaths flattens a decoded JSON object into sorted dotted key
// paths ("engine.Hits", "hit_rate", ...). Array elements collapse to
// "[]" — the schema is about field names, not traffic.
func keyPaths(prefix string, v any, out *[]string) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			keyPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			keyPaths(prefix+"[]", child, out)
			break // one element shows the shape
		}
	default:
		*out = append(*out, prefix)
	}
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	sort.Strings(got)
	text := strings.Join(got, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server/ -run Golden -update` after an intentional schema change)", err)
	}
	if string(want) != text {
		t.Errorf("%s drifted from the golden schema.\n got:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with -update (and update TUTORIAL.md's dashboard examples).",
			name, text, want)
	}
}

// TestStatsGoldenSchema pins the /v1/stats JSON shape: adding,
// renaming, or dropping a field (including engine counters like
// WritebackErrors) is an API change and must update the golden file
// deliberately, not by accident.
func TestStatsGoldenSchema(t *testing.T) {
	ts := goldenServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if status != 200 {
		t.Fatalf("stats: %d %s", status, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema.golden", keys)
}

// TestStatsGoldenShardedSchema pins the sharded /v1/stats shape: the
// shards array (shard index, full engine counter block, hit rate) is
// what the occload scorecard and TUTORIAL §9 examples consume, so its
// keys changing is an API change.
func TestStatsGoldenShardedSchema(t *testing.T) {
	ts := goldenShardedServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if status != 200 {
		t.Fatalf("stats: %d %s", status, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	if _, ok := decoded["shards"]; !ok {
		t.Fatalf("sharded server's /v1/stats has no shards array:\n%s", out)
	}
	if arr, ok := decoded["shards"].([]any); ok && len(arr) != 2 {
		t.Errorf("shards array has %d entries, want one per shard (2)", len(arr))
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_sharded.golden", keys)
}

// TestStatsGoldenWALSchema pins the WAL-enabled /v1/stats shape: the
// wal block (sequence watermarks, append/commit/fsync/checkpoint
// counters, replay tallies) is what the durability runbook and the CI
// chaos leg read, so its keys changing is an API change.
func TestStatsGoldenWALSchema(t *testing.T) {
	ts := goldenWALServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if status != 200 {
		t.Fatalf("stats: %d %s", status, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	wal, ok := decoded["wal"].(map[string]any)
	if !ok {
		t.Fatalf("WAL server's /v1/stats has no wal block:\n%s", out)
	}
	// The durable seed PUT must have gone through the group commit.
	if c, _ := wal["commits"].(float64); c < 1 {
		t.Errorf("wal.commits = %v after a durable PUT, want >= 1", wal["commits"])
	}
	if f, _ := wal["fsyncs"].(float64); f < 1 {
		t.Errorf("wal.fsyncs = %v after a durable PUT, want >= 1", wal["fsyncs"])
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_wal.golden", keys)
}

// TestMetricsGoldenWALSchema pins the ooc_wal_* metric families a
// WAL-enabled plane adds to /metrics.
func TestMetricsGoldenWALSchema(t *testing.T) {
	ts := goldenWALServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	var families []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	checkGolden(t, "metrics_families_wal.golden", families)

	for _, want := range []string{"ooc_wal_appends_total", "ooc_wal_fsyncs_total", "ooc_wal_commits_total"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("WAL /metrics missing family %s", want)
		}
	}
}

// TestMetricsGoldenShardedSchema pins the labeled per-shard metric
// families a sharded plane adds to /metrics. The per-shard counters
// register eagerly at construction, so the families are present even
// before the first flush publishes values.
func TestMetricsGoldenShardedSchema(t *testing.T) {
	ts := goldenShardedServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	var families []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	checkGolden(t, "metrics_families_sharded.golden", families)

	// A labeled family must render one series per shard.
	for _, want := range []string{`ooc_shard_hits_total{shard="0"}`, `ooc_shard_hits_total{shard="1"}`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("sharded /metrics missing series %s:\n%s", want, out)
		}
	}
}

// TestStatsGoldenTenantSchema pins the tenanted /v1/stats shape: the
// tenants array (id, weight, request/byte/rejection/queue-wait/chunk
// tallies, live queue depth) is what the occload multi-tenant
// scorecard and the CI fairness gate consume, so its keys changing is
// an API change. An untenanted server must NOT grow the block — the
// omitempty contract that keeps the pre-tenant golden stable.
func TestStatsGoldenTenantSchema(t *testing.T) {
	ts := goldenTenantServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if status != 200 {
		t.Fatalf("stats: %d %s", status, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	tenants, ok := decoded["tenants"].([]any)
	if !ok {
		t.Fatalf("tenant-configured server's /v1/stats has no tenants array:\n%s", out)
	}
	if len(tenants) != 2 {
		t.Errorf("tenants array has %d entries, want 2 (batch + interactive; default stays hidden)", len(tenants))
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_tenant.golden", keys)
}

// TestMetricsGoldenTenantSchema pins the labeled occd_tenant_* metric
// families a tenant-configured plane adds to /metrics. Weighted
// tenants register eagerly at construction, so the idle "batch"
// tenant's series must be present before its first request.
func TestMetricsGoldenTenantSchema(t *testing.T) {
	ts := goldenTenantServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	var families []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	checkGolden(t, "metrics_families_tenant.golden", families)

	for _, want := range []string{
		`occd_tenant_requests_total{tenant="interactive"}`,
		`occd_tenant_bytes_total{tenant="interactive"}`,
		`occd_tenant_requests_total{tenant="batch"}`,
		`occd_tenant_rejected_quota_total{tenant="batch"}`,
		`occd_tenant_queue_waits_total{tenant="batch"}`,
		`occd_tenant_chunks_total{tenant="batch"}`,
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tenant /metrics missing series %s", want)
		}
	}
	if strings.Contains(string(out), `tenant="default"`) {
		t.Error("default tenant leaked into /metrics; untenanted traffic must stay unlabeled")
	}
}

// TestMetricsGoldenSchema pins the metric families /metrics exposes
// (name + type, from the # TYPE lines): dashboards and the CI load
// checks key off these names.
func TestMetricsGoldenSchema(t *testing.T) {
	ts := goldenServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	var families []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	if len(families) == 0 {
		t.Fatalf("no # TYPE lines in /metrics output:\n%s", out)
	}
	checkGolden(t, "metrics_families.golden", families)

	// The JSON rendering must expose the same families.
	status, jout, _ := ts.do(t, http.MethodGet, ts.url("/metrics?format=json"), nil)
	if status != 200 {
		t.Fatalf("metrics?format=json: %d", status)
	}
	var decoded map[string]any
	if err := json.Unmarshal(jout, &decoded); err != nil {
		t.Fatalf("metrics json: %v\n%s", err, jout)
	}
	for _, fam := range families {
		name := strings.Fields(fam)[0]
		if !strings.Contains(string(jout), name) {
			t.Errorf("metric family %s present in Prometheus text but missing from the JSON rendering", name)
		}
	}
	_ = decoded
}
