package server

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// TestGracefulDrainFlushesDirtyTiles is the acceptance proof for the
// drain path: writes acknowledged before the shutdown signal survive
// it, in-flight requests finish, and nothing reaches the backing file
// only AFTER the drain flushed it — verified by reopening the backing
// directory with a fresh disk and checking contents.
func TestGracefulDrainFlushesDirtyTiles(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, Config{}, func(d *ooc.Disk) { d.Dir(dir) })
	ts.createArray(t, "A", 8, 8)
	ts.createArray(t, "B", 8, 8)

	// Acknowledged write: the tile is dirty in the engine cache.
	payload := make([]float64, 8*8)
	for i := range payload {
		payload[i] = float64(i) + 1
	}
	status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), encodePayload(payload))
	if status != http.StatusNoContent {
		t.Fatalf("put: %d %s", status, out)
	}
	// The write must still be cache-resident (write-back, not through):
	// the backing file stays zero until drain, which is exactly what
	// the flush-at-drain guarantee is protecting.
	raw, err := os.ReadFile(filepath.Join(dir, "A.dat"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range raw {
		if b != 0 {
			t.Fatal("dirty tile reached the backing file before drain; the test proves nothing")
		}
	}

	// An in-flight slow read rides through the shutdown.
	ts.back["B"].readDelay.Store(int64(400 * time.Millisecond))
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.url("/v1/arrays/B/tile?lo=0,0&hi=8,8"))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ts.back["B"].reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow read never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The SIGTERM sequence: stop accepting and wait out in-flight
	// requests (httptest's Close blocks on them, like
	// http.Server.Shutdown), then drain the storage side.
	ts.http.Close()
	if err := ts.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-inflight
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request did not finish cleanly: status %d, err %v", res.status, res.err)
	}
	if !ts.srv.Draining() {
		t.Error("server does not report draining")
	}

	// Reopen the backing directory: the acknowledged write is there.
	d2 := ooc.NewDisk(0).Dir(dir).KeepExisting()
	defer d2.Close()
	arr, err := d2.CreateArray(ir.NewArray("A", 8, 8), layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			if got, want := arr.At([]int64{i, j}), payload[i*8+j]; got != want {
				t.Fatalf("reopened A[%d,%d] = %v, want %v: drain lost a dirty tile", i, j, got, want)
			}
		}
	}
}

// TestDrainRejectsNewWork checks the drain flag turns the data plane
// and health checks over to 503 while metrics stay up.
func TestDrainRejectsNewWork(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 4, 4)
	if err := ts.srv.Drain(); err != nil {
		t.Fatal(err)
	}
	status, _, hdr := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=2,2"), nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("data plane after drain: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/healthz"), nil); status != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d, want 503", status)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil); status != http.StatusOK {
		t.Errorf("metrics after drain: status %d, want 200", status)
	}
}
