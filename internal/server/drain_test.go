package server

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// TestGracefulDrainFlushesDirtyTiles is the acceptance proof for the
// drain path: writes acknowledged before the shutdown signal survive
// it, in-flight requests finish, and nothing reaches the backing file
// only AFTER the drain flushed it — verified by reopening the backing
// directory with a fresh disk and checking contents.
func TestGracefulDrainFlushesDirtyTiles(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, Config{}, func(d *ooc.Disk) { d.Dir(dir) })
	ts.createArray(t, "A", 8, 8)
	ts.createArray(t, "B", 8, 8)

	// Acknowledged write: the tile is dirty in the engine cache.
	payload := make([]float64, 8*8)
	for i := range payload {
		payload[i] = float64(i) + 1
	}
	status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), encodePayload(payload))
	if status != http.StatusNoContent {
		t.Fatalf("put: %d %s", status, out)
	}
	// The write must still be cache-resident (write-back, not through):
	// the backing file stays zero until drain, which is exactly what
	// the flush-at-drain guarantee is protecting.
	raw, err := os.ReadFile(filepath.Join(dir, "A.dat"))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range raw {
		if b != 0 {
			t.Fatal("dirty tile reached the backing file before drain; the test proves nothing")
		}
	}

	// An in-flight slow read rides through the shutdown.
	ts.back["B"].readDelay.Store(int64(400 * time.Millisecond))
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.url("/v1/arrays/B/tile?lo=0,0&hi=8,8"))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ts.back["B"].reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow read never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The SIGTERM sequence: stop accepting and wait out in-flight
	// requests (httptest's Close blocks on them, like
	// http.Server.Shutdown), then drain the storage side.
	ts.http.Close()
	if err := ts.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-inflight
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request did not finish cleanly: status %d, err %v", res.status, res.err)
	}
	if !ts.srv.Draining() {
		t.Error("server does not report draining")
	}

	// Reopen the backing directory: the acknowledged write is there.
	d2 := ooc.NewDisk(0).Dir(dir).KeepExisting()
	defer d2.Close()
	arr, err := d2.CreateArray(ir.NewArray("A", 8, 8), layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			if got, want := arr.At([]int64{i, j}), payload[i*8+j]; got != want {
				t.Fatalf("reopened A[%d,%d] = %v, want %v: drain lost a dirty tile", i, j, got, want)
			}
		}
	}
}

// TestDrainWaitsForInflightWrite covers the drain-timeout hazard: when
// Drain runs while a PUT still holds its admission slot (the HTTP
// shutdown gave up waiting), Drain must block until that PUT released
// its engine handle before closing the engine — otherwise the PUT's
// dirty tile is pinned during the final flush, skipped, and a write
// acknowledged with 204 evaporates. Here the in-flight PUT must both
// complete with 204 and be durable in the reopened backing file.
func TestDrainWaitsForInflightWrite(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, Config{}, func(d *ooc.Disk) { d.Dir(dir) })
	ts.createArray(t, "A", 8, 8)
	// A PUT's Acquire reads the cold tile from the backend, so the read
	// delay holds the PUT in flight while Drain starts.
	ts.back["A"].readDelay.Store(int64(400 * time.Millisecond))

	payload := make([]float64, 8*8)
	for i := range payload {
		payload[i] = float64(i) + 3
	}
	status := make(chan int, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), bytes.NewReader(encodePayload(payload)))
		if err != nil {
			status <- 0
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			status <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ts.back["A"].reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight PUT never reached the backend")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain with the PUT mid-flight — NOT waiting for the HTTP server
	// first, exactly the drain-timeout ordering.
	if err := ts.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := <-status; got != http.StatusNoContent {
		t.Fatalf("in-flight PUT finished with %d, want 204", got)
	}
	ts.http.Close()

	d2 := ooc.NewDisk(0).Dir(dir).KeepExisting()
	defer d2.Close()
	arr, err := d2.CreateArray(ir.NewArray("A", 8, 8), layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			if got, want := arr.At([]int64{i, j}), payload[i*8+j]; got != want {
				t.Fatalf("reopened A[%d,%d] = %v, want %v: drain dropped an acknowledged in-flight write", i, j, got, want)
			}
		}
	}
}

// TestDrainQueuedWriteNeverFalselyAcknowledged covers the other side
// of the drain barrier: a PUT parked in the admission queue when Drain
// closes the engine must either complete fully (204, durable) or fail
// (503) — never acknowledge a write the closed engine will not flush.
func TestDrainQueuedWriteNeverFalselyAcknowledged(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 2}, func(d *ooc.Disk) { d.Dir(dir) })
	ts.createArray(t, "A", 8, 8)
	ts.createArray(t, "B", 8, 8)
	ts.back["B"].readDelay.Store(int64(400 * time.Millisecond))

	// Occupy the only slot with a slow GET of B.
	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		resp, err := http.Get(ts.url("/v1/arrays/B/tile?lo=0,0&hi=8,8"))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ts.back["B"].reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot-occupying GET never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Park a PUT of A in the queue behind it.
	payload := make([]float64, 8*8)
	for i := range payload {
		payload[i] = float64(i) + 7
	}
	putStatus := make(chan int, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), bytes.NewReader(encodePayload(payload)))
		if err != nil {
			putStatus <- 0
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			putStatus <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		putStatus <- resp.StatusCode
	}()
	for ts.srv.tenants.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("PUT never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain races the queued PUT for the freed slot; both outcomes are
	// legal, lying is not.
	if err := ts.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-getDone
	status := <-putStatus
	ts.http.Close()

	d2 := ooc.NewDisk(0).Dir(dir).KeepExisting()
	defer d2.Close()
	arr, err := d2.CreateArray(ir.NewArray("A", 8, 8), layout.RowMajor(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	durable := true
	for i := int64(0); i < 8 && durable; i++ {
		for j := int64(0); j < 8; j++ {
			if arr.At([]int64{i, j}) != payload[i*8+j] {
				durable = false
				break
			}
		}
	}
	switch status {
	case http.StatusNoContent:
		if !durable {
			t.Fatal("queued PUT was acknowledged with 204 but its data is not in the backing file")
		}
	case http.StatusServiceUnavailable:
		// Correct refusal: the engine closed before the PUT got a slot.
	default:
		t.Fatalf("queued PUT finished with %d, want 204 (durable) or 503", status)
	}
}

// TestDrainRejectsNewWork checks the drain flag turns the data plane
// and health checks over to 503 while metrics stay up.
func TestDrainRejectsNewWork(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 4, 4)
	if err := ts.srv.Drain(); err != nil {
		t.Fatal(err)
	}
	status, _, hdr := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=2,2"), nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("data plane after drain: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/healthz"), nil); status != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d, want 503", status)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil); status != http.StatusOK {
		t.Errorf("metrics after drain: status %d, want 200", status)
	}
}
