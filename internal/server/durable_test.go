package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"outcore/internal/faultfs"
	"outcore/internal/ooc"
)

// newDurableTestServer wires a WAL-enabled, durable-PUT server over a
// fault injector — cmd/occd's `-wal -durable-puts -faults` stack — so
// the tests below can break fsync underneath an acked write path.
func newDurableTestServer(t *testing.T, durable bool) (*testServer, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.New(1, faultfs.Profile{SyncErr: 1})
	ts := &testServer{}
	d := ooc.NewDisk(0)
	d.WrapBackend(inj.Wrap)
	d.EnableWAL(ooc.WALOptions{Logs: 2})
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16})
	ts.disk = d
	ts.srv = New(d, eng, Config{DurablePuts: durable})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		inj.Heal() // the drain's flush must land on the healed device
		ts.srv.Drain()
	})
	inj.Heal()
	ts.createArray(t, "A", 8, 8)
	return ts, inj
}

// TestDurablePutsFailClosed pins the DurablePuts contract: a 204 means
// the write is on stable storage, so when every fsync fails the PUT
// must fail too — never ack first and hope the flush works out later.
func TestDurablePutsFailClosed(t *testing.T) {
	ts, inj := newDurableTestServer(t, true)
	payload := encodePayload(make([]float64, 16))

	inj.Arm() // every Sync now fails; the group commit cannot complete
	status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), payload)
	if status != http.StatusInternalServerError {
		t.Fatalf("durable PUT with failing fsync: status %d (%s), want 500", status, out)
	}

	inj.Heal()
	status, out, _ = ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), payload)
	if status != http.StatusNoContent {
		t.Fatalf("durable PUT on healed device: status %d (%s), want 204", status, out)
	}
	st := ts.disk.WALStats()
	if st == nil || st.Commits < 1 || st.Fsyncs < 1 {
		t.Errorf("healed durable PUT did not group-commit: %+v", st)
	}
}

// TestBufferedPutsStayAvailable pins the other side of the contract:
// without DurablePuts a PUT only buffers into the tile cache, so a
// broken fsync path must NOT surface — availability is the default and
// durability is opt-in.
func TestBufferedPutsStayAvailable(t *testing.T) {
	ts, inj := newDurableTestServer(t, false)
	payload := encodePayload(make([]float64, 16))

	inj.Arm()
	status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), payload)
	if status != http.StatusNoContent {
		t.Fatalf("buffered PUT with failing fsync: status %d (%s), want 204", status, out)
	}
	if st := ts.disk.WALStats(); st != nil && st.Commits != 0 {
		t.Errorf("buffered PUT ran a group commit: %+v", st)
	}
}
