package server

import (
	"strings"
	"testing"

	"outcore/internal/ooc"
)

// TestValidateShards is the table for the commands' -shards flag: the
// valid range is 1..MaxShards, and everything outside it must produce
// the named-flag error occd/occload/occhaos print before exit 2.
func TestValidateShards(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{0, false},
		{-1, false},
		{-64, false},
		{1, true},
		{2, true},
		{8, true},
		{MaxShards, true},
		{MaxShards + 1, false},
		{1 << 20, false},
	}
	for _, c := range cases {
		err := ValidateShards(c.n)
		if c.ok && err != nil {
			t.Errorf("ValidateShards(%d) = %v, want nil", c.n, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ValidateShards(%d) = nil, want out-of-range error", c.n)
				continue
			}
			// The message names the offending value and the valid range,
			// matching the commands' "-flag: <why> (valid: ...)" convention.
			if !strings.Contains(err.Error(), "out of range") || !strings.Contains(err.Error(), "valid: 1..64") {
				t.Errorf("ValidateShards(%d) error %q misses the valid-range message", c.n, err)
			}
		}
	}
}

// TestBuildEngine pins the construction rule: one Engine up to shards
// = 1, a ShardedEngine beyond — the types the /v1/stats handler
// switches its scorecard on.
func TestBuildEngine(t *testing.T) {
	d := ooc.NewDisk(0)
	if _, ok := BuildEngine(d, 1, ooc.EngineOptions{CacheTiles: 4}).(*ooc.Engine); !ok {
		t.Error("BuildEngine(1) did not return a single *ooc.Engine")
	}
	se, ok := BuildEngine(d, 4, ooc.EngineOptions{CacheTiles: 8}).(*ooc.ShardedEngine)
	if !ok {
		t.Fatal("BuildEngine(4) did not return a *ooc.ShardedEngine")
	}
	if se.Shards() != 4 {
		t.Errorf("BuildEngine(4) built %d shards", se.Shards())
	}
}
