package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"outcore/internal/obs"
	"outcore/internal/ooc"
)

// doHdr is ts.do with request headers, for the content-negotiation
// tests that need Accept-Encoding / Content-Encoding set.
func (ts *testServer) doHdr(t *testing.T, method, url string, body []byte, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// smoothPayload is a compressible tile: a dyadic-step ramp, the shape
// the codec is built for.
func smoothPayload(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = 20.0 + float64(i)*0.25
	}
	return data
}

// TestTileWireNegotiation exercises the x-ooc-gorilla content coding on
// the tile endpoints end to end: a client that offers it gets framed
// bodies smaller than raw, a client that doesn't keeps the raw format
// bit for bit, and the two never share a coalescing flight.
func TestTileWireNegotiation(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 32, 32)

	data := smoothPayload(16 * 16)
	raw := encodePayload(data)
	url := ts.url("/v1/arrays/A/tile?lo=0,0&hi=16,16")

	// Seed with a plain PUT — the path every existing client uses.
	if status, out, _ := ts.do(t, http.MethodPut, url, raw); status != http.StatusNoContent {
		t.Fatalf("raw put: %d %s", status, out)
	}

	// A legacy GET (no Accept-Encoding) stays raw.
	status, body, hdr := ts.do(t, http.MethodGet, url, nil)
	if status != 200 {
		t.Fatalf("raw get: %d", status)
	}
	if ce := hdr.Get("Content-Encoding"); ce != "" {
		t.Fatalf("raw get got Content-Encoding %q, want none", ce)
	}
	if !bytes.Equal(body, raw) {
		t.Fatal("raw get body differs from the stored payload")
	}

	// A negotiating GET gets a framed body, smaller, that decodes back.
	status, frame, hdr := ts.doHdr(t, http.MethodGet, url, nil,
		map[string]string{"Accept-Encoding": "gzip, " + WireEncoding + ";q=0.9"})
	if status != 200 {
		t.Fatalf("compressed get: %d %s", status, frame)
	}
	if ce := hdr.Get("Content-Encoding"); ce != WireEncoding {
		t.Fatalf("compressed get Content-Encoding = %q, want %q", ce, WireEncoding)
	}
	if len(frame) >= len(raw) {
		t.Fatalf("smooth tile frame is %d bytes, raw is %d — no wire win", len(frame), len(raw))
	}
	got := make([]float64, len(data))
	if _, err := ooc.DecodeFrame(frame, got); err != nil {
		t.Fatalf("decode wire frame: %v", err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("wire round trip differs at %d: %v != %v", i, got[i], data[i])
		}
	}

	// A compressed PUT lands the same as a raw one.
	data2 := smoothPayload(16 * 16)
	for i := range data2 {
		data2[i] += 100
	}
	frame2 := ooc.AppendFrame(nil, data2)
	if status, out, _ := ts.doHdr(t, http.MethodPut, url, frame2,
		map[string]string{"Content-Encoding": WireEncoding}); status != http.StatusNoContent {
		t.Fatalf("compressed put: %d %s", status, out)
	}
	status, body, _ = ts.do(t, http.MethodGet, url, nil)
	if status != 200 {
		t.Fatalf("get after compressed put: %d", status)
	}
	if !bytes.Equal(body, encodePayload(data2)) {
		t.Fatal("compressed PUT did not land the decoded payload")
	}

	// An unknown coding is refused up front.
	if status, _, _ := ts.doHdr(t, http.MethodPut, url, frame2,
		map[string]string{"Content-Encoding": "zstd"}); status != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown Content-Encoding: %d, want 415", status)
	}

	// A corrupt frame is rejected AND leaves the cached tile untouched.
	// The flipped byte sits in the CRC-covered payload, not the tail
	// padding.
	bad := append([]byte(nil), frame2...)
	bad[20] ^= 0xFF
	if status, _, _ := ts.doHdr(t, http.MethodPut, url, bad,
		map[string]string{"Content-Encoding": WireEncoding}); status != http.StatusBadRequest {
		t.Fatalf("corrupt frame put: %d, want 400", status)
	}
	status, body, _ = ts.do(t, http.MethodGet, url, nil)
	if status != 200 || !bytes.Equal(body, encodePayload(data2)) {
		t.Fatal("corrupt frame PUT disturbed the cached tile")
	}

	// A frame whose element count doesn't match the tile is rejected too.
	short := ooc.AppendFrame(nil, data2[:8])
	if status, _, _ := ts.doHdr(t, http.MethodPut, url, short,
		map[string]string{"Content-Encoding": WireEncoding}); status != http.StatusBadRequest {
		t.Fatalf("wrong-size frame put: %d, want 400", status)
	}
}

func TestAcceptsWireEncoding(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", false},
		{WireEncoding, true},
		{"gzip, " + WireEncoding, true},
		{" " + WireEncoding + " ;q=0.5, gzip", true},
		{WireEncoding + "x", false},
		{"x-ooc", false},
	} {
		if got := acceptsWireEncoding(tc.header); got != tc.want {
			t.Errorf("acceptsWireEncoding(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// goldenCompressServer is goldenServer with backend compression, WAL
// payload compression and the pool mirrors on — the wiring cmd/occd
// builds for -wal -compress — so the goldens pin the compression
// scorecard block and the ooc_comp_* / ooc_wal_comp_* / ooc_pool_*
// metric families. The seed traffic negotiates the wire coding both
// ways so every byte counter's code path has fired.
func goldenCompressServer(t *testing.T) *testServer {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ts := &testServer{}
	d := ooc.NewDisk(0).Observe(sink).EnableCompression()
	d.EnableWAL(ooc.WALOptions{Logs: 2, Obs: sink, Compress: true})
	ooc.ObservePool(sink)
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16, Obs: sink})
	ts.disk = d
	ts.srv = New(d, eng, Config{DurablePuts: true, Obs: sink})
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	ts.createArray(t, "A", 8, 8)
	payload := smoothPayload(16)
	frame := ooc.AppendFrame(nil, payload)
	if status, out, _ := ts.doHdr(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), frame,
		map[string]string{"Content-Encoding": WireEncoding}); status != http.StatusNoContent {
		t.Fatalf("seed put: %d %s", status, out)
	}
	if status, _, _ := ts.doHdr(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=4,4"), nil,
		map[string]string{"Accept-Encoding": WireEncoding}); status != 200 {
		t.Fatal("seed get failed")
	}
	return ts
}

// TestStatsGoldenCompressSchema pins the compression-enabled /v1/stats
// shape: the compression block (disk/WAL/wire raw-vs-encoded byte
// tallies plus the arena scorecard) is what `occload -compress` and the
// CI bench gate read, so its keys changing is an API change.
func TestStatsGoldenCompressSchema(t *testing.T) {
	ts := goldenCompressServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if status != 200 {
		t.Fatalf("stats: %d %s", status, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, out)
	}
	comp, ok := decoded["compression"].(map[string]any)
	if !ok {
		t.Fatalf("compress-enabled /v1/stats has no compression block:\n%s", out)
	}
	// The seeded wire traffic must have registered, and the smooth tile
	// must actually have compressed on the wire.
	rawB, _ := comp["wire_raw_bytes"].(float64)
	encB, _ := comp["wire_bytes"].(float64)
	if rawB <= 0 || encB <= 0 || encB >= rawB {
		t.Errorf("wire tallies raw=%v enc=%v, want 0 < enc < raw", rawB, encB)
	}
	var keys []string
	keyPaths("", decoded, &keys)
	checkGolden(t, "stats_schema_compress.golden", keys)
}

// TestMetricsGoldenCompressSchema pins the metric families a
// compression-enabled plane adds to /metrics.
func TestMetricsGoldenCompressSchema(t *testing.T) {
	ts := goldenCompressServer(t)
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	var families []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	checkGolden(t, "metrics_families_compress.golden", families)

	for _, want := range []string{
		"ooc_comp_disk_read_bytes_total",
		"ooc_comp_disk_write_bytes_total",
		"ooc_wal_comp_bytes_total",
		"ooc_pool_hits_total",
		"occd_wire_bytes_total",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("compress-enabled /metrics missing family %s", want)
		}
	}
}
