package server

import "sync"

// flightGroup coalesces concurrent requests for the same key into one
// execution: the first caller (the leader) runs fn, every caller that
// arrives while the leader is in flight waits and shares the leader's
// result. This is the serving-layer complement of the engine's
// per-tile coalescing: the engine guarantees one BACKEND read per
// in-flight tile, the flight group additionally collapses the
// per-request work above it (acquire/encode/release) and — because it
// reports whether a call was coalesced — gives the server an exact
// coalesced-request counter to export.
//
// A flight group by itself is only as fresh as its leader: a caller
// joining a flight gets data from the moment the LEADER started, so a
// key that stays stable across writes would let a GET that begins
// after an acknowledged PUT join a pre-write flight and time-travel
// backwards. The server therefore versions tile flight keys with the
// array's write generation (see tileLock): a post-write GET computes a
// key no pre-write flight is registered under and starts fresh.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress execution and its eventual result. gen
// rides along with the payload so every caller sharing the flight
// reports the same write generation as the bytes it actually got —
// computing it outside the flight could pair a fresher generation with
// an older body.
type flight struct {
	done    chan struct{} // closed when payload/gen/err are final
	payload []byte
	gen     uint64
	err     error
}

// do returns fn's result for key, executing fn once per set of
// concurrent callers. coalesced reports whether this caller joined an
// existing flight instead of leading one. The shared payload must be
// treated as read-only by all callers.
func (g *flightGroup) do(key string, fn func() ([]byte, uint64, error)) (payload []byte, gen uint64, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.payload, f.gen, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.payload, f.gen, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.payload, f.gen, false, f.err
}
