package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"outcore/internal/ooc"
)

// instrumentedBackend counts and optionally delays backend reads; the
// coalescing and drain tests hang off it via Disk.WrapBackend.
type instrumentedBackend struct {
	ooc.Backend
	reads     atomic.Int64
	readDelay atomic.Int64 // nanoseconds applied to every ReadAt
}

func (b *instrumentedBackend) ReadAt(buf []float64, off int64) error {
	b.reads.Add(1)
	if d := b.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return b.Backend.ReadAt(buf, off)
}

// testServer bundles one served engine-over-disk with its HTTP front.
type testServer struct {
	srv  *Server
	http *httptest.Server
	disk *ooc.Disk
	back map[string]*instrumentedBackend
}

func newTestServer(t *testing.T, cfg Config, diskCfg func(*ooc.Disk)) *testServer {
	t.Helper()
	ts := &testServer{back: map[string]*instrumentedBackend{}}
	d := ooc.NewDisk(0)
	d.WrapBackend(func(name string, b ooc.Backend) ooc.Backend {
		ib := &instrumentedBackend{Backend: b}
		ts.back[name] = ib
		return ib
	})
	if diskCfg != nil {
		diskCfg(d)
	}
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 16})
	ts.disk = d
	ts.srv = New(d, eng, cfg)
	ts.http = httptest.NewServer(ts.srv.Handler())
	t.Cleanup(func() {
		ts.http.Close()
		ts.srv.Drain()
	})
	return ts
}

func (ts *testServer) url(format string, args ...any) string {
	return ts.http.URL + fmt.Sprintf(format, args...)
}

// do issues a request and returns status + body.
func (ts *testServer) do(t *testing.T, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func (ts *testServer) createArray(t *testing.T, name string, dims ...int64) {
	t.Helper()
	body, _ := json.Marshal(createRequest{Name: name, Dims: dims})
	status, out, _ := ts.do(t, http.MethodPost, ts.url("/v1/arrays"), body)
	if status != http.StatusCreated {
		t.Fatalf("create %s: status %d, body %s", name, status, out)
	}
}

func TestEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)

	// healthz and metrics are always up.
	if status, body, _ := ts.do(t, http.MethodGet, ts.url("/healthz"), nil); status != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", status, body)
	}

	// Create, duplicate-create, list, get.
	ts.createArray(t, "A", 8, 8)
	body, _ := json.Marshal(createRequest{Name: "A", Dims: []int64{8, 8}})
	if status, _, _ := ts.do(t, http.MethodPost, ts.url("/v1/arrays"), body); status != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", status)
	}
	status, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays"), nil)
	if status != 200 || !strings.Contains(string(out), `"name": "A"`) {
		t.Errorf("list: %d %s", status, out)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A"), nil); status != 200 {
		t.Errorf("get: status %d", status)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/nope"), nil); status != http.StatusNotFound {
		t.Errorf("missing array: status %d, want 404", status)
	}

	// Write a tile, read it back, verify payload round trip.
	payload := make([]float64, 4*4)
	for i := range payload {
		payload[i] = float64(i) + 0.5
	}
	status, out, _ = ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=2,2&hi=6,6"), encodePayload(payload))
	if status != http.StatusNoContent {
		t.Fatalf("tile put: %d %s", status, out)
	}
	status, out, hdr := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=2,2&hi=6,6"), nil)
	if status != 200 {
		t.Fatalf("tile get: %d %s", status, out)
	}
	if hdr.Get("X-Tile-Elems") != "16" {
		t.Errorf("X-Tile-Elems = %q", hdr.Get("X-Tile-Elems"))
	}
	got := make([]float64, 16)
	decodePayload(out, got)
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("tile[%d] = %v, want %v", i, got[i], payload[i])
		}
	}

	// Metrics exposition includes the serving series, in both formats.
	if _, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics"), nil); !strings.Contains(string(out), "occd_requests_total") {
		t.Errorf("prometheus metrics missing serving series: %s", out)
	}
	if _, out, _ := ts.do(t, http.MethodGet, ts.url("/metrics?format=json"), nil); !strings.Contains(string(out), "occd_requests_total") {
		t.Errorf("json metrics missing serving series: %s", out)
	}

	// Stats reflect the traffic.
	var st statsPayload
	_, out, _ = ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.Engine.Acquires() == 0 {
		t.Errorf("stats did not move: %+v", st)
	}
}

func TestMalformedTileRequests(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 8, 8)
	cases := []struct {
		name, method, url string
		body              []byte
		want              int
	}{
		{"missing lo", http.MethodGet, "/v1/arrays/A/tile?hi=2,2", nil, 400},
		{"garbage lo", http.MethodGet, "/v1/arrays/A/tile?lo=x,y&hi=2,2", nil, 400},
		{"negative coord", http.MethodGet, "/v1/arrays/A/tile?lo=-1,0&hi=2,2", nil, 400},
		{"rank mismatch", http.MethodGet, "/v1/arrays/A/tile?lo=0&hi=2", nil, 400},
		{"hi below lo", http.MethodGet, "/v1/arrays/A/tile?lo=4,4&hi=2,2", nil, 400},
		{"empty after clip", http.MethodGet, "/v1/arrays/A/tile?lo=9,9&hi=12,12", nil, 400},
		{"short payload", http.MethodPut, "/v1/arrays/A/tile?lo=0,0&hi=2,2", make([]byte, 8), 400},
		{"long payload", http.MethodPut, "/v1/arrays/A/tile?lo=0,0&hi=2,2", make([]byte, 5*8), 400},
		{"bad create body", http.MethodPost, "/v1/arrays", []byte("{"), 400},
		{"bad layout", http.MethodPost, "/v1/arrays", []byte(`{"name":"B","dims":[4],"layout":"diag"}`), 400},
		{"bad name", http.MethodPost, "/v1/arrays", []byte(`{"name":"a/b","dims":[4]}`), 400},
		{"no dims", http.MethodPost, "/v1/arrays", []byte(`{"name":"B"}`), 400},
		{"negative extent", http.MethodPost, "/v1/arrays", []byte(`{"name":"B","dims":[-4]}`), 400},
		{"tile of missing array", http.MethodGet, "/v1/arrays/nope/tile?lo=0,0&hi=2,2", nil, 404},
	}
	for _, c := range cases {
		status, body, _ := ts.do(t, c.method, ts.http.URL+c.url, c.body)
		if status != c.want {
			t.Errorf("%s: status %d (want %d), body %s", c.name, status, c.want, body)
		}
	}
}

// TestColdTileCoalescing is the acceptance proof for request
// coalescing: K concurrent GETs of one cold tile cause exactly one
// backend ReadAt, with every other request either joining the flight
// or hitting the engine cache. Run under -race this also exercises the
// flight group and engine for data races.
func TestColdTileCoalescing(t *testing.T) {
	const K = 24
	ts := newTestServer(t, Config{MaxInflight: K, QueueDepth: K}, nil)
	ts.createArray(t, "A", 16, 16)
	ib := ts.back["A"]
	ib.readDelay.Store(int64(100 * time.Millisecond))

	var wg sync.WaitGroup
	start := make(chan struct{})
	statuses := make([]int, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req, err := http.NewRequest(http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=16,16"), nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	close(start)
	wg.Wait()

	for i, status := range statuses {
		if status != 200 {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := ib.reads.Load(); got != 1 {
		t.Errorf("backend ReadAt called %d times for one cold tile, want exactly 1", got)
	}
	var st statsPayload
	_, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Misses != 1 {
		t.Errorf("engine misses = %d, want 1", st.Engine.Misses)
	}
	// Every request but the leader was coalesced into the flight or
	// served from the now-warm cache; nothing fell through.
	if st.Coalesced+st.Engine.Hits != K-1 {
		t.Errorf("coalesced (%d) + cache hits (%d) = %d, want %d",
			st.Coalesced, st.Engine.Hits, st.Coalesced+st.Engine.Hits, K-1)
	}
	if st.Coalesced == 0 {
		t.Error("no request was coalesced despite a 100ms cold fetch")
	}
}

func TestRateLimitBackpressure(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	ts := newTestServer(t, Config{RatePerSec: 1, Burst: 2, Clock: clock}, nil)
	ts.createArray(t, "A", 4, 4) // spends one token of the default client

	get := func(id string) (int, http.Header) {
		req, _ := http.NewRequest(http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=2,2"), nil)
		req.Header.Set("X-Client-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	// Fresh client: burst of 2 admitted, third rejected with a
	// Retry-After hint, other clients unaffected.
	if status, _ := get("alice"); status != 200 {
		t.Fatalf("first: %d", status)
	}
	if status, _ := get("alice"); status != 200 {
		t.Fatalf("second: %d", status)
	}
	status, hdr := get("alice")
	if status != http.StatusTooManyRequests {
		t.Fatalf("third: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if status, _ := get("bob"); status != 200 {
		t.Errorf("bob rejected by alice's bucket: %d", status)
	}
	// Tokens refill with the clock.
	now = now.Add(1100 * time.Millisecond)
	if status, _ := get("alice"); status != 200 {
		t.Errorf("after refill: %d", status)
	}
}

func TestAdmissionQueueOverflow(t *testing.T) {
	ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 1}, nil)
	ts.createArray(t, "A", 8, 8)
	ib := ts.back["A"]
	ib.readDelay.Store(int64(300 * time.Millisecond))

	stats := func() statsPayload {
		var st statsPayload
		_, out, _ := ts.do(t, http.MethodGet, ts.url("/v1/stats"), nil)
		if err := json.Unmarshal(out, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Request 1 occupies the only inflight slot (cold tile, slow read);
	// request 2 parks in the queue. Distinct tiles so coalescing cannot
	// short-circuit admission.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=%d,0&hi=%d,8", i, i+1), nil)
			results <- status
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := stats()
		if st.Inflight >= 1 && st.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot+queue never filled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Request 3 finds the queue full: 503 + Retry-After.
	status, _, hdr := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=4,0&hi=5,8"), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// The parked requests complete once the slot frees.
	for i := 0; i < 2; i++ {
		if status := <-results; status != 200 {
			t.Errorf("parked request finished with %d", status)
		}
	}
	if st := stats(); st.RejectedQueue != 1 {
		t.Errorf("rejected_queue = %d, want 1", st.RejectedQueue)
	}
}
