package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// LoadSpec configures the synthetic multi-client tile workload the
// load harness (cmd/occload) fires at a running server. Tile selection
// is zipf-skewed — the multi-client array-access regime where a few
// hot tiles dominate, which is exactly what request coalescing and the
// LRU cache are for.
type LoadSpec struct {
	BaseURL string       // server root, e.g. http://127.0.0.1:8080
	Client  *http.Client // nil = http.DefaultClient

	Array    string  // target array name
	Dims     []int64 // its extents (tile grid derivation)
	TileEdge int64   // tile edge in elements per dimension

	Clients  int     // concurrent clients (each its own X-Client-ID)
	Requests int     // total requests across all clients
	ZipfS    float64 // zipf skew parameter (>1); <=1 = uniform
	ReadFrac float64 // fraction of reads (rest are tile writes)
	Seed     int64   // deterministic tile-choice streams
	Compress bool    // negotiate the x-ooc-gorilla wire coding both ways

	// Tenant, when set, rides every request as the X-Tenant header, so
	// the whole population bills to one tenant — the multi-tenant
	// scenario runs one RunLoad per population.
	Tenant string

	// Scenario selects the operator mix. "" or "point" is the classic
	// single-tile GET/PUT workload. "scan-heavy" replaces most reads
	// with streaming range scans that each cover a full stripe of tiles
	// in one request; "write-heavy" replaces most writes with multi-op
	// batch PUTs; "mixed" interleaves scans, batches, and point ops.
	Scenario string
	BatchOps int // tiles per batch request (default 8)

	// OpenLoopRate switches the harness from closed-loop (each client
	// fires its next request when the previous answer lands — a regime
	// that hides server stalls by slowing the offered load with them)
	// to an open-loop schedule: arrivals are fixed at this many
	// requests/second across all clients BEFORE the run starts, and
	// each request's latency is measured from its scheduled arrival,
	// not from when the client got around to sending it. A stalled
	// server therefore accrues queueing delay in the percentiles
	// instead of silently thinning the load — the coordinated-omission
	// trap the closed loop falls into. 0 keeps the closed loop.
	OpenLoopRate float64
}

// LoadResult is one load run's scorecard: client-side throughput and
// latency percentiles plus the server-side cache/coalescing deltas
// polled from /v1/stats around the run.
type LoadResult struct {
	Requests   int     // requests issued
	OK         int     // 2xx responses
	Rejected   int     // 429/503 backpressure responses
	Errors     int     // transport failures and other non-2xx
	Seconds    float64 // wall time of the run
	Throughput float64 // OK responses per second
	P50        float64 // median latency, seconds (successful requests)
	P99        float64 // 99th-percentile latency, seconds
	PutP50     float64 // median acked-PUT latency, seconds (0 if no writes)
	PutP99     float64 // 99th-percentile acked-PUT latency, seconds

	Hits, Misses int64   // engine delta over the run
	HitRate      float64 // hits / (hits + misses), from the delta
	Coalesced    int64   // server coalesced-request delta

	// Wire byte deltas from the server's compression scorecard (zero
	// when the server has no compression enabled).
	WireRawBytes int64 // logical tile payload bytes moved
	WireBytes    int64 // bytes that actually crossed the wire

	// Cluster deltas, filled when the target is an occrouter (its
	// /v1/stats mirrors the occd keys and adds a cluster scorecard);
	// all zero against a single occd.
	Replicas     int   // copies per tile the router maintains
	HandoffHints int64 // writes durably queued for down replicas during the run
	ReadRepairs  int64 // stale replicas rewritten during the run

	// Operator accounting. RoundTrips counts HTTP requests actually
	// issued; PointRoundTrips counts what moving the same tile volume
	// would have cost as single-tile requests. Their ratio is the
	// batched/streaming operators' round-trip reduction at equal bytes
	// (1:1 for a pure point workload).
	RoundTrips      int64
	PointRoundTrips int64
	ScanRequests    int64 // streaming scans issued
	ScanChunks      int64 // CRC-framed chunks those scans delivered
	BatchRequests   int64 // batch requests issued
	BatchOpsMoved   int64 // individual ops inside those batches
}

// tiles enumerates the aligned tile grid over dims.
func (spec LoadSpec) tiles() []layout.Box {
	edge := spec.TileEdge
	if edge <= 0 {
		edge = 8
	}
	grid := []layout.Box{{Lo: []int64{}, Hi: []int64{}}}
	for _, n := range spec.Dims {
		var next []layout.Box
		for _, b := range grid {
			for lo := int64(0); lo < n; lo += edge {
				hi := lo + edge
				if hi > n {
					hi = n
				}
				nb := layout.Box{
					Lo: append(append([]int64{}, b.Lo...), lo),
					Hi: append(append([]int64{}, b.Hi...), hi),
				}
				next = append(next, nb)
			}
		}
		grid = next
	}
	return grid
}

// picker returns a deterministic tile-index chooser: zipf-skewed when
// s > 1, uniform otherwise.
func picker(rng *rand.Rand, s float64, n int) func() int {
	if s > 1 && n > 1 {
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

// RunLoad drives the workload and collates the scorecard. The server
// must already expose spec.Array (occload creates it or serves a
// kernel's arrays).
func RunLoad(spec LoadSpec) (LoadResult, error) {
	if spec.Clients <= 0 {
		spec.Clients = 1
	}
	if spec.Requests <= 0 {
		spec.Requests = spec.Clients
	}
	client := spec.Client
	if client == nil {
		client = http.DefaultClient
	}
	tiles := spec.tiles()
	if len(tiles) == 0 {
		return LoadResult{}, fmt.Errorf("server: load spec yields no tiles (dims %v)", spec.Dims)
	}
	before, err := fetchStats(client, spec.BaseURL)
	if err != nil {
		return LoadResult{}, fmt.Errorf("server: load pre-stats: %w", err)
	}

	type clientTally struct {
		ok, rejected, errs int
		lat                []time.Duration
		putLat             []time.Duration

		roundTrips, pointTrips int64
		scans, scanChunks      int64
		batches, batchOps      int64
	}
	tallies := make([]clientTally, spec.Clients)
	// The open-loop inter-arrival gap per client: arrivals are pinned
	// to the schedule computed here, before the run starts.
	var interarrival time.Duration
	if spec.OpenLoopRate > 0 {
		interarrival = time.Duration(float64(time.Second) * float64(spec.Clients) / spec.OpenLoopRate)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < spec.Clients; c++ {
		per := spec.Requests / spec.Clients
		if c < spec.Requests%spec.Clients {
			per++
		}
		wg.Add(1)
		go func(c, per int) {
			defer wg.Done()
			tally := &tallies[c]
			rng := rand.New(rand.NewSource(spec.Seed + int64(c)*7919))
			pick := picker(rng, spec.ZipfS, len(tiles))
			id := fmt.Sprintf("load-client-%d", c)
			for i := 0; i < per; i++ {
				t0 := time.Now()
				if interarrival > 0 {
					// Open loop: latency runs from the scheduled arrival,
					// so a late send (the server stalled us) shows up as
					// queueing delay instead of vanishing.
					sched := start.Add(time.Duration(int64(i)*int64(spec.Clients)+int64(c)) * interarrival / time.Duration(spec.Clients))
					if wait := time.Until(sched); wait > 0 {
						time.Sleep(wait)
					}
					t0 = sched
				}
				var status int
				var err error
				isPut := false
				tally.roundTrips++
				switch spec.pickOp(rng) {
				case opScan:
					var chunks int64
					var pointEq int64
					status, chunks, pointEq, err = doScanRequest(client, id, spec, tiles[pick()], rng)
					tally.scans++
					tally.scanChunks += chunks
					tally.pointTrips += pointEq
				case opBatch:
					n := spec.BatchOps
					if n <= 0 {
						n = 8
					}
					status, err = doBatchRequest(client, id, spec, tiles, pick, n, rng)
					isPut = true
					tally.batches++
					tally.batchOps += int64(n)
					tally.pointTrips += int64(n)
				default:
					read := rng.Float64() < spec.ReadFrac
					isPut = !read
					status, err = doTileRequest(client, id, spec.Tenant, spec.BaseURL, spec.Array, tiles[pick()], read, spec.Compress, rng)
					tally.pointTrips++
				}
				d := time.Since(t0)
				switch {
				case err != nil:
					tally.errs++
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					tally.rejected++
				case status >= 200 && status < 300:
					tally.ok++
					tally.lat = append(tally.lat, d)
					if isPut {
						tally.putLat = append(tally.putLat, d)
					}
				default:
					tally.errs++
				}
			}
		}(c, per)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, spec.BaseURL)
	if err != nil {
		return LoadResult{}, fmt.Errorf("server: load post-stats: %w", err)
	}

	res := LoadResult{Requests: spec.Requests, Seconds: elapsed.Seconds()}
	var lat, putLat []time.Duration
	for i := range tallies {
		res.OK += tallies[i].ok
		res.Rejected += tallies[i].rejected
		res.Errors += tallies[i].errs
		res.RoundTrips += tallies[i].roundTrips
		res.PointRoundTrips += tallies[i].pointTrips
		res.ScanRequests += tallies[i].scans
		res.ScanChunks += tallies[i].scanChunks
		res.BatchRequests += tallies[i].batches
		res.BatchOpsMoved += tallies[i].batchOps
		lat = append(lat, tallies[i].lat...)
		putLat = append(putLat, tallies[i].putLat...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.OK) / res.Seconds
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = percentile(lat, 0.50)
	res.P99 = percentile(lat, 0.99)
	sort.Slice(putLat, func(i, j int) bool { return putLat[i] < putLat[j] })
	res.PutP50 = percentile(putLat, 0.50)
	res.PutP99 = percentile(putLat, 0.99)
	res.Hits = after.Engine.Hits - before.Engine.Hits
	res.Misses = after.Engine.Misses - before.Engine.Misses
	if total := res.Hits + res.Misses; total > 0 {
		res.HitRate = float64(res.Hits) / float64(total)
	}
	res.Coalesced = after.Coalesced - before.Coalesced
	if after.Compression != nil && before.Compression != nil {
		res.WireRawBytes = after.Compression.WireRawBytes - before.Compression.WireRawBytes
		res.WireBytes = after.Compression.WireBytes - before.Compression.WireBytes
	}
	if after.Cluster != nil && before.Cluster != nil {
		res.Replicas = after.Cluster.Replicas
		res.HandoffHints = after.Cluster.HandoffHints - before.Cluster.HandoffHints
		res.ReadRepairs = after.Cluster.ReadRepairs - before.Cluster.ReadRepairs
	}
	return res, nil
}

// Load op kinds per request.
const (
	opPoint = iota
	opScan
	opBatch
)

// pickOp chooses this request's operator under the spec's scenario.
func (spec LoadSpec) pickOp(rng *rand.Rand) int {
	switch spec.Scenario {
	case "scan-heavy":
		if rng.Float64() < 0.8 {
			return opScan
		}
	case "write-heavy":
		if rng.Float64() < 0.8 {
			return opBatch
		}
	case "mixed":
		switch u := rng.Float64(); {
		case u < 1.0/3:
			return opScan
		case u < 2.0/3:
			return opBatch
		}
	}
	return opPoint
}

// doScanRequest streams one range scan: the chosen tile's box widened
// to the array's full extent along the last dimension, chunked at one
// tile per frame — the same bytes a client would otherwise move with
// one point GET per tile on the stripe. Returns the chunk count
// consumed and that point-GET equivalent.
func doScanRequest(client *http.Client, id string, spec LoadSpec, tile layout.Box, rng *rand.Rand) (int, int64, int64, error) {
	last := len(tile.Lo) - 1
	lo := append([]int64{}, tile.Lo...)
	hi := append([]int64{}, tile.Hi...)
	edge := hi[last] - lo[last]
	lo[last] = 0
	hi[last] = spec.Dims[last]
	pointEq := (spec.Dims[last] + edge - 1) / edge
	chunk := edge
	for d := 0; d < last; d++ {
		chunk *= hi[d] - lo[d]
	}
	url := fmt.Sprintf("%s/v1/arrays/%s/scan?lo=%s&hi=%s&chunk=%d",
		spec.BaseURL, spec.Array, coordList(lo), coordList(hi), chunk)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if spec.Compress {
		req.Header.Set("Accept-Encoding", WireEncoding)
	}
	req.Header.Set("X-Client-ID", id)
	if spec.Tenant != "" {
		req.Header.Set(TenantHeader, spec.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, 0, nil
	}
	sr := NewScanReader(resp.Body)
	chunks := int64(0)
	for {
		_, err := sr.Next()
		if err == io.EOF {
			return resp.StatusCode, chunks, pointEq, nil
		}
		if err != nil {
			return 0, chunks, pointEq, err
		}
		chunks++
	}
}

// doBatchRequest issues one multi-op batch PUT over n picked tiles
// (smooth payloads, like the point writes). The per-op statuses fold
// into one verdict: any failed op fails the request.
func doBatchRequest(client *http.Client, id string, spec LoadSpec, tiles []layout.Box, pick func() int, n int, rng *rand.Rand) (int, error) {
	type wireOp struct {
		Op   string  `json:"op"`
		Lo   []int64 `json:"lo"`
		Hi   []int64 `json:"hi"`
		Data string  `json:"data_b64"`
	}
	ops := make([]wireOp, 0, n)
	for i := 0; i < n; i++ {
		box := tiles[pick()]
		data := make([]float64, box.Size())
		tileBase := float64(rng.Intn(4000)) * 0.25
		for j := range data {
			data[j] = tileBase + float64(j)*0.25
		}
		ops = append(ops, wireOp{Op: "put", Lo: box.Lo, Hi: box.Hi,
			Data: base64.StdEncoding.EncodeToString(encodePayload(data))})
	}
	body, _ := json.Marshal(map[string]any{"ops": ops})
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/v1/arrays/%s/batch", spec.BaseURL, spec.Array), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", id)
	if spec.Tenant != "" {
		req.Header.Set(TenantHeader, spec.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out struct {
		Failed int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	if out.Failed > 0 {
		return http.StatusInternalServerError, nil
	}
	return resp.StatusCode, nil
}

// doTileRequest issues one tile read or write as client id and returns
// the HTTP status. Write bodies are smooth tiles — a random per-tile
// base plus a dyadic ramp, the locally-coherent shape scientific
// kernels produce — so compression legs measure a realistic wire win
// rather than the noise floor. With compress set, writes travel as
// codec frames and reads offer the coding via Accept-Encoding.
func doTileRequest(client *http.Client, id, tenant, base, array string, box layout.Box, read, compress bool, rng *rand.Rand) (int, error) {
	url := fmt.Sprintf("%s/v1/arrays/%s/tile?lo=%s&hi=%s", base, array, coordList(box.Lo), coordList(box.Hi))
	var req *http.Request
	var err error
	if read {
		req, err = http.NewRequest(http.MethodGet, url, nil)
		if err == nil && compress {
			req.Header.Set("Accept-Encoding", WireEncoding)
		}
	} else {
		data := make([]float64, box.Size())
		tileBase := float64(rng.Intn(4000)) * 0.25
		for i := range data {
			data[i] = tileBase + float64(i)*0.25
		}
		if compress {
			req, err = http.NewRequest(http.MethodPut, url, bytes.NewReader(ooc.AppendFrame(nil, data)))
			if err == nil {
				req.Header.Set("Content-Encoding", WireEncoding)
			}
		} else {
			req, err = http.NewRequest(http.MethodPut, url, bytes.NewReader(encodePayload(data)))
		}
	}
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-Client-ID", id)
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// coordList renders coordinates as the query form "1,2,3".
func coordList(c []int64) string {
	out := ""
	for i, v := range c {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", v)
	}
	return out
}

// percentile returns the q-quantile of sorted latencies, in seconds.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Seconds()
}

// loadStats is statsPayload plus the cluster scorecard an occrouter's
// /v1/stats carries on top of the shared occd keys.
type loadStats struct {
	statsPayload
	Cluster *struct {
		Replicas     int   `json:"replicas"`
		HandoffHints int64 `json:"handoff_hints"`
		ReadRepairs  int64 `json:"read_repairs"`
	} `json:"cluster"`
}

// fetchStats polls /v1/stats.
func fetchStats(client *http.Client, base string) (loadStats, error) {
	var out loadStats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("stats endpoint: %s", resp.Status)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}
