package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestValidateTenantID(t *testing.T) {
	for _, id := range []string{"a", "alpha", "A-1_b.c", strings.Repeat("x", 64)} {
		if err := ValidateTenantID(id); err != nil {
			t.Errorf("ValidateTenantID(%q) = %v, want ok", id, err)
		}
	}
	for _, id := range []string{"", strings.Repeat("x", 65), "a b", "a/b", "a\x00b", "ü", "~other", "a\nb"} {
		if err := ValidateTenantID(id); err == nil {
			t.Errorf("ValidateTenantID(%q) = nil, want error", id)
		}
	}
}

func TestResolveTenant(t *testing.T) {
	cases := []struct {
		name, header, path string
		wantTenant         string
		wantPath           string
		wantErr            bool
	}{
		{"untenanted", "", "/v1/stats", DefaultTenant, "/v1/stats", false},
		{"header only", "alpha", "/v1/stats", "alpha", "/v1/stats", false},
		{"path only", "", "/t/beta/v1/stats", "beta", "/v1/stats", false},
		{"header wins over path", "alpha", "/t/beta/v1/stats", "alpha", "/v1/stats", false},
		{"bad header", "a b", "/v1/stats", "", "", true},
		{"bad path id", "", "/t/a b/v1/stats", "", "", true},
		// Both present, path malformed: still a 400 even though the
		// header alone would have resolved — a malformed id anywhere
		// is a client bug worth surfacing.
		{"bad path id under valid header", "alpha", "/t//v1/stats", "", "", true},
		{"bare /t/<id>", "", "/t/gamma", "gamma", "/", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/", nil)
			req.URL.Path = tc.path
			if tc.header != "" {
				req.Header.Set(TenantHeader, tc.header)
			}
			tenant, path, err := ResolveTenant(req)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ResolveTenant(%q, %q) = %q, want error", tc.header, tc.path, tenant)
				}
				return
			}
			if err != nil {
				t.Fatalf("ResolveTenant(%q, %q): %v", tc.header, tc.path, err)
			}
			if tenant != tc.wantTenant || path != tc.wantPath {
				t.Errorf("ResolveTenant(%q, %q) = (%q, %q), want (%q, %q)",
					tc.header, tc.path, tenant, path, tc.wantTenant, tc.wantPath)
			}
		})
	}
}

func TestTenantHandler(t *testing.T) {
	var gotTenant, gotPath string
	h := TenantHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTenant, gotPath = TenantOf(r), r.URL.Path
	}))

	req := httptest.NewRequest(http.MethodGet, "/t/beta/v1/arrays", nil)
	req.Header.Set(TenantHeader, "alpha")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || gotTenant != "alpha" || gotPath != "/v1/arrays" {
		t.Errorf("header+path: code %d tenant %q path %q, want 200 alpha /v1/arrays",
			rec.Code, gotTenant, gotPath)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/arrays", nil)
	req.Header.Set(TenantHeader, strings.Repeat("x", 65))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("overlong header: code %d, want 400", rec.Code)
	}
}

func TestTenantOfWithoutHandler(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	if got := TenantOf(req); got != DefaultTenant {
		t.Errorf("TenantOf without TenantHandler = %q, want %q", got, DefaultTenant)
	}
}

func TestParseTenantWeights(t *testing.T) {
	w, err := ParseTenantWeights(" alpha=3, beta=0.5 ,,")
	if err != nil || w["alpha"] != 3 || w["beta"] != 0.5 || len(w) != 2 {
		t.Errorf("ParseTenantWeights = %v, %v", w, err)
	}
	if w, err := ParseTenantWeights(""); err != nil || w != nil {
		t.Errorf("empty spec = %v, %v, want nil, nil", w, err)
	}
	for _, bad := range []string{"alpha", "alpha=0", "alpha=-1", "alpha=NaN", "a b=1", "=2"} {
		if _, err := ParseTenantWeights(bad); err == nil {
			t.Errorf("ParseTenantWeights(%q) = nil error, want error", bad)
		}
	}
}

func TestTenantQuotaRPS(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewTenantPlane(TenantPlaneOpts{
		Config: TenantConfig{QuotaRPS: 2},
		Clock:  func() time.Time { return now },
	})
	for i := 0; i < 2; i++ {
		if ok, _ := p.Allow("a"); !ok {
			t.Fatalf("request %d rejected inside the burst", i)
		}
	}
	ok, retry := p.Allow("a")
	if ok {
		t.Fatal("third request allowed with an empty bucket")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("Retry-After = %v, want (0, 1s]", retry)
	}
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := p.Allow("a"); !ok {
			t.Fatalf("request %d rejected after a 1s refill", i)
		}
	}
	if rq, _ := p.Totals(); rq != 1 {
		t.Errorf("rejected-quota total = %d, want 1", rq)
	}
}

func TestTenantQuotaBytesPostpaid(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewTenantPlane(TenantPlaneOpts{
		Config: TenantConfig{QuotaBytesPerSec: 100},
		Clock:  func() time.Time { return now },
	})
	if ok, _ := p.Allow("a"); !ok {
		t.Fatal("first request rejected with a full byte bucket")
	}
	// Post-paid: the debit lands after the transfer and may overdraw.
	p.DebitBytes("a", 350)
	ok, retry := p.Allow("a")
	if ok {
		t.Fatal("request allowed while the byte bucket is 250 overdrawn")
	}
	// Refilling at 100 B/s from -250 to 1 takes 2.51s.
	if retry < 2500*time.Millisecond || retry > 2520*time.Millisecond {
		t.Errorf("Retry-After = %v, want ~2.51s", retry)
	}
	now = now.Add(3 * time.Second)
	if ok, _ := p.Allow("a"); !ok {
		t.Fatal("request rejected after the bucket refilled")
	}
	st := p.Stats()
	if len(st) != 1 || st[0].Bytes != 350 || st[0].RejectedQuota != 1 {
		t.Errorf("Stats = %+v, want bytes 350, rejected_quota 1", st)
	}
}

// TestDRRGrantShares drives the DRR scan directly (no goroutines, no
// clock): with both queues saturated, a weight-3 tenant must receive
// exactly 3 of every 4 grants.
func TestDRRGrantShares(t *testing.T) {
	p := NewTenantPlane(TenantPlaneOpts{
		Config: TenantConfig{Weights: map[string]float64{"a": 3}},
		Pool:   make(chan struct{}, 1),
	})
	p.mu.Lock()
	for _, id := range []string{"a", "b"} {
		ts := p.stateLocked(id)
		for i := 0; i < 40; i++ {
			ts.waiters = append(ts.waiters, &tenantWaiter{ts: ts, res: make(chan bool, 1)})
		}
		ts.inRing = true
		p.ring = append(p.ring, ts)
		p.queued.Add(40)
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		w, ok := p.nextLocked()
		if !ok {
			p.mu.Unlock()
			t.Fatalf("grant %d: ring empty with waiters queued", i)
		}
		counts[w.ts.id]++
	}
	p.mu.Unlock()
	if counts["a"] != 30 || counts["b"] != 10 {
		t.Errorf("40 grants split a=%d b=%d, want 30/10 for weights 3:1", counts["a"], counts["b"])
	}
}

func TestAcquireQueueAndHandoff(t *testing.T) {
	p := NewTenantPlane(TenantPlaneOpts{Pool: make(chan struct{}, 1), QueueDepth: 1})
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	release, ok := p.Acquire(req, "a")
	if !ok {
		t.Fatal("first acquire failed on an empty pool")
	}
	granted := make(chan bool, 1)
	go func() {
		rel, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "a")
		if ok {
			rel()
		}
		granted <- ok
	}()
	waitFor(t, func() bool { return p.Queued() == 1 })
	// Queue depth 1 is spent: the next arrival bounces.
	if _, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "b"); ok {
		t.Fatal("acquire succeeded past a full queue")
	}
	release()
	if !<-granted {
		t.Fatal("queued waiter was not handed the released slot")
	}
	if _, rq := p.Totals(); rq != 1 {
		t.Errorf("rejected-queue total = %d, want 1", rq)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	p := NewTenantPlane(TenantPlaneOpts{Pool: make(chan struct{}, 1), QueueDepth: 8})
	release, _ := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "a")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil).WithContext(ctx), "a")
		done <- ok
	}()
	waitFor(t, func() bool { return p.Queued() == 1 })
	cancel()
	if <-done {
		t.Fatal("cancelled waiter reported a grant")
	}
	if p.Queued() != 0 {
		t.Errorf("queued = %d after cancel, want 0 (slot leak)", p.Queued())
	}
	release()
	// The pool must be whole again.
	rel, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "b")
	if !ok {
		t.Fatal("acquire failed after cancel+release; the cancelled waiter leaked the slot")
	}
	rel()
}

func TestFailWaitersFlushesQueues(t *testing.T) {
	p := NewTenantPlane(TenantPlaneOpts{Pool: make(chan struct{}, 1), QueueDepth: 8})
	release, _ := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "a")
	done := make(chan bool, 1)
	go func() {
		_, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "a")
		done <- ok
	}()
	waitFor(t, func() bool { return p.Queued() == 1 })
	p.FailWaiters()
	if <-done {
		t.Fatal("parked waiter admitted during drain")
	}
	if p.Queued() != 0 {
		t.Errorf("queued = %d after FailWaiters, want 0", p.Queued())
	}
	if _, ok := p.Acquire(httptest.NewRequest(http.MethodGet, "/v1/stats", nil), "b"); ok {
		t.Fatal("acquire succeeded on a closed plane")
	}
	release() // must not hand the slot to anyone or panic
}

// TestTenantOverflowBucket: past maxTenantStates distinct ids, new
// identities fold into the shared overflow bucket instead of growing
// server memory without bound.
func TestTenantOverflowBucket(t *testing.T) {
	p := NewTenantPlane(TenantPlaneOpts{})
	for i := 0; i < maxTenantStates+88; i++ {
		p.DebitBytes("t"+strconv.Itoa(i), 1)
	}
	if len(p.states) != maxTenantStates+1 {
		t.Errorf("states = %d, want %d (cap + overflow bucket)", len(p.states), maxTenantStates+1)
	}
	var overflow *TenantStat
	for _, st := range p.Stats() {
		if st.Tenant == overflowTenant {
			s := st
			overflow = &s
		}
	}
	if overflow == nil || overflow.Bytes != 88 {
		t.Errorf("overflow bucket = %+v, want 88 bytes folded into %q", overflow, overflowTenant)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// FuzzTenantHeader hardens tenant resolution against hostile
// identities: arbitrary header bytes, path-encoded ids, and their
// disagreement must resolve to a valid tenant or a clean 400 — never
// a panic, never an id outside the validated charset.
func FuzzTenantHeader(f *testing.F) {
	f.Add("alpha", "beta", "v1/stats")
	f.Add("", "scan", "v1/arrays/A/tile")
	f.Add("a\x00b", "", "v1/stats")
	f.Add(strings.Repeat("x", 65), "y", "healthz")
	f.Add("..", "-_.", "")
	f.Add("alpha", "t/nested", "t/deeper/v1/stats")
	f.Fuzz(func(t *testing.T, header, pathTenant, tail string) {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		path := "/" + tail
		if pathTenant != "" {
			path = "/t/" + pathTenant + path
		}
		req.URL.Path = path
		if header != "" {
			req.Header.Set(TenantHeader, header)
		}

		tenant, cleaned, err := ResolveTenant(req)
		if err == nil {
			if tenant != DefaultTenant {
				if verr := ValidateTenantID(tenant); verr != nil {
					t.Fatalf("resolved tenant %q fails validation: %v", tenant, verr)
				}
			}
			// Precedence: a present (and therefore valid) header is
			// always the identity.
			if h := req.Header.Get(TenantHeader); h != "" && tenant != h {
				t.Fatalf("header %q present and valid but tenant = %q", h, tenant)
			}
			if !strings.HasPrefix(cleaned, "/") {
				t.Fatalf("cleaned path %q is not rooted", cleaned)
			}
		}

		rec := httptest.NewRecorder()
		var seen string
		TenantHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen = TenantOf(r)
		})).ServeHTTP(rec, req)
		if err != nil {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("resolve error %v but handler answered %d, want 400", err, rec.Code)
			}
			return
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("valid tenant %q but handler answered %d", tenant, rec.Code)
		}
		if seen != tenant {
			t.Fatalf("handler saw tenant %q, ResolveTenant said %q", seen, tenant)
		}
	})
}
