package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"outcore/internal/obs"
)

// Tenant identity. Every request belongs to exactly one tenant: the
// X-Tenant header when present, else a /t/<id>/ path prefix, else
// DefaultTenant. The default tenant is the backward-compatible lane —
// untenanted traffic is admitted and scheduled like any other tenant
// but is kept out of the per-tenant scorecards and metric families, so
// single-tenant deployments see no new surface.
const (
	// TenantHeader names the request's tenant; it generalizes the
	// per-client X-Client-ID (which still feeds the per-client rate
	// limiter — a tenant is a paying workload, a client is one of its
	// connections).
	TenantHeader = "X-Tenant"
	// DefaultTenant is the identity of untenanted traffic.
	DefaultTenant = "default"

	maxTenantIDLen = 64
	// maxTenantStates bounds the per-tenant bookkeeping; beyond it new
	// identities fold into one shared overflow bucket so an id-spraying
	// client cannot grow server memory without bound.
	maxTenantStates = 512
	// overflowTenant is deliberately outside the valid id charset so it
	// can never collide with a real tenant.
	overflowTenant = "~other"
)

// ValidateTenantID rejects ids that are empty, overlong, or carry
// bytes outside [A-Za-z0-9._-] — the charset keeps ids safe as metric
// labels, path segments, and log fields.
func ValidateTenantID(id string) error {
	if id == "" {
		return errors.New("empty tenant id")
	}
	if len(id) > maxTenantIDLen {
		return fmt.Errorf("tenant id is %d bytes, max %d", len(id), maxTenantIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant id byte %q at offset %d (valid: [A-Za-z0-9._-])", c, i)
		}
	}
	return nil
}

// ResolveTenant extracts the request's tenant identity and the path
// the route table should see. The X-Tenant header wins over a
// /t/<id>/ path prefix; both are validated whenever present, so a
// malformed id in either place is a 400 even when the other would
// have resolved. The path prefix is stripped regardless of which
// source won — /t/alpha/v1/stats with X-Tenant: beta is beta asking
// for /v1/stats.
func ResolveTenant(r *http.Request) (tenant, path string, err error) {
	path = r.URL.Path
	var pathTenant string
	if rest, ok := strings.CutPrefix(path, "/t/"); ok {
		id, tail, _ := strings.Cut(rest, "/")
		if err := ValidateTenantID(id); err != nil {
			return "", "", fmt.Errorf("path tenant: %w", err)
		}
		pathTenant = id
		path = "/" + tail
	}
	if h := r.Header.Get(TenantHeader); h != "" {
		if err := ValidateTenantID(h); err != nil {
			return "", "", fmt.Errorf("%s: %w", TenantHeader, err)
		}
		return h, path, nil
	}
	if pathTenant != "" {
		return pathTenant, path, nil
	}
	return DefaultTenant, path, nil
}

type tenantCtxKey struct{}

// TenantOf returns the tenant identity TenantHandler resolved for
// this request, or DefaultTenant when the request never passed
// through the tenant plane (direct mux tests, internal probes).
func TenantOf(r *http.Request) string {
	if t, ok := r.Context().Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// TenantHandler is the outermost layer of both occd's and occrouter's
// handler stacks: it resolves the tenant (400 on a malformed id),
// strips the /t/<id>/ path prefix, and stashes the identity in the
// request context for admission, quota accounting, and fan-out.
func TenantHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant, path, err := ResolveTenant(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad tenant: %v", err)
			return
		}
		r2 := r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant))
		if path != r.URL.Path {
			u := *r2.URL
			u.Path = path
			u.RawPath = ""
			r2.URL = &u
		}
		next.ServeHTTP(w, r2)
	})
}

// ParseTenantWeights parses a -tenant-weights value like
// "alpha=3,beta=1" into a DRR weight map. Unlisted tenants weigh 1.
func ParseTenantWeights(s string) (map[string]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want tenant=weight)", part)
		}
		id = strings.TrimSpace(id)
		if err := ValidateTenantID(id); err != nil {
			return nil, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("bad weight for tenant %s: %q (want a positive number)", id, val)
		}
		out[id] = w
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// TenantConfig groups the tenant-plane knobs occd and occrouter share.
// The zero value disables quotas and chunk caps and weighs every
// tenant equally — exactly the pre-tenant behavior.
type TenantConfig struct {
	// Weights are the DRR service shares; a tenant with weight 3 is
	// granted admission slots 3x as often as a weight-1 tenant when
	// both have waiters queued. Unlisted tenants weigh 1.
	Weights map[string]float64
	// QuotaBytesPerSec is each tenant's sustained payload-byte budget
	// (0 = unlimited). Byte accounting is post-paid: a request is
	// admitted while the bucket is positive and the bytes it actually
	// moved are debited afterwards, so the bucket can briefly go
	// negative but admitted bytes always equal metered bytes.
	QuotaBytesPerSec float64
	// QuotaRPS is each tenant's sustained request budget (0 = unlimited).
	QuotaRPS float64
	// MaxScanInflight caps the scan/batch chunks a tenant may have in
	// the engine at once (0 = unlimited), so one streaming scan cannot
	// occupy every worker while point tenants wait.
	MaxScanInflight int
}

// TenantPlaneOpts wires a TenantPlane into a serving stack.
type TenantPlaneOpts struct {
	Config TenantConfig
	// MetricPrefix names the labeled families: "occd" registers
	// occd_tenant_*, "occrouter" registers occrouter_tenant_*.
	MetricPrefix string
	// Reg receives the per-tenant metric families (nil = none).
	Reg *obs.Registry
	// Pool is the shared admission-slot pool (cap = max inflight). The
	// plane never closes or resizes it; Drain's fill-to-capacity
	// barrier keeps working unchanged. nil = admission unbounded.
	Pool chan struct{}
	// QueueDepth bounds the total waiters across all tenant queues.
	QueueDepth int
	// Clock is the quota clock (nil = time.Now); tests freeze it.
	Clock func() time.Time
	// Inflight, when set, tracks len(Pool) across acquires/releases.
	Inflight *obs.Gauge
}

// TenantPlane is the per-tenant scheduling and accounting layer:
// token-bucket request/byte quotas answering 429 + Retry-After, and —
// replacing the old single FIFO wait queue — per-tenant admission
// queues drained by deficit round-robin over configured weights, with
// an optional per-tenant cap on in-flight scan/batch chunks. One
// plane serves one daemon; occd and occrouter each own one.
type TenantPlane struct {
	cfg    TenantConfig
	prefix string
	reg    *obs.Registry
	// noreg absorbs the default tenant's counters so the accounting
	// code paths stay uniform without publishing a "default" series.
	noreg    *obs.Registry
	pool     chan struct{}
	depth    int
	now      func() time.Time
	inflight *obs.Gauge

	rejQuota atomic.Int64 // 429s from tenant quotas
	rejQueue atomic.Int64 // 503s from a full or draining queue
	queued   atomic.Int64 // waiters across all tenant queues

	mu      sync.Mutex
	closed  bool // FailWaiters ran; no new waiters, no handoffs
	states  map[string]*tenantState
	ring    []*tenantState // active DRR ring: tenants with waiters
	ringIdx int
}

type tenantState struct {
	id      string
	weight  float64
	deficit float64
	inRing  bool
	waiters []*tenantWaiter

	// Token buckets (guarded by the plane mutex). byteTokens may go
	// negative: bytes are debited after the transfer they paid for.
	reqTokens  float64
	byteTokens float64
	lastRefill time.Time

	// chunkSem caps in-flight scan/batch chunks (nil = unlimited).
	chunkSem chan struct{}

	requests   *obs.Counter
	bytes      *obs.Counter
	rejected   *obs.Counter
	queueWaits *obs.Counter
	chunks     *obs.Counter
}

// tenantWaiter is one queued admission. res carries the verdict:
// true hands the waiter an admission slot (the releaser's slot moves
// to it without ever re-entering the pool, so a racing request cannot
// barge past the queue), false means the plane is draining.
type tenantWaiter struct {
	ts       *tenantState
	res      chan bool
	resolved bool // popped from its queue; res will carry a verdict
}

// NewTenantPlane builds the plane and eagerly registers the metric
// families of every explicitly weighted tenant, mirroring the sharded
// engine's register-at-construction idiom so dashboards and goldens
// see the families before the first request lands.
func NewTenantPlane(o TenantPlaneOpts) *TenantPlane {
	p := &TenantPlane{
		cfg:      o.Config,
		prefix:   o.MetricPrefix,
		reg:      o.Reg,
		noreg:    obs.NewRegistry(),
		pool:     o.Pool,
		depth:    o.QueueDepth,
		now:      o.Clock,
		inflight: o.Inflight,
		states:   map[string]*tenantState{},
	}
	if p.prefix == "" {
		p.prefix = "occd"
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.depth <= 0 {
		p.depth = 64
	}
	ids := make([]string, 0, len(p.cfg.Weights))
	for id := range p.cfg.Weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	p.mu.Lock()
	for _, id := range ids {
		p.stateLocked(id)
	}
	p.mu.Unlock()
	return p
}

func (p *TenantPlane) weightOf(id string) float64 {
	if w, ok := p.cfg.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}

func (p *TenantPlane) reqBurst() float64 { return math.Max(p.cfg.QuotaRPS, 1) }

func (p *TenantPlane) byteBurst() float64 { return p.cfg.QuotaBytesPerSec }

func (p *TenantPlane) stateLocked(id string) *tenantState {
	if ts, ok := p.states[id]; ok {
		return ts
	}
	if len(p.states) >= maxTenantStates && id != overflowTenant {
		return p.stateLocked(overflowTenant)
	}
	ts := &tenantState{
		id:         id,
		weight:     p.weightOf(id),
		reqTokens:  p.reqBurst(),
		byteTokens: p.byteBurst(),
		lastRefill: p.now(),
	}
	if p.cfg.MaxScanInflight > 0 {
		ts.chunkSem = make(chan struct{}, p.cfg.MaxScanInflight)
	}
	reg := p.reg
	if id == DefaultTenant || reg == nil {
		reg = p.noreg
	}
	label := fmt.Sprintf("{tenant=%q}", id)
	ts.requests = reg.Counter(p.prefix+"_tenant_requests_total"+label,
		"requests admitted for this tenant")
	ts.bytes = reg.Counter(p.prefix+"_tenant_bytes_total"+label,
		"logical tile payload bytes moved for this tenant (the byte-quota meter)")
	ts.rejected = reg.Counter(p.prefix+"_tenant_rejected_quota_total"+label,
		"requests answered 429 by this tenant's request/byte quota")
	ts.queueWaits = reg.Counter(p.prefix+"_tenant_queue_waits_total"+label,
		"admissions that waited in this tenant's DRR queue")
	ts.chunks = reg.Counter(p.prefix+"_tenant_chunks_total"+label,
		"scan/batch chunks processed for this tenant")
	p.states[id] = ts
	return ts
}

func (p *TenantPlane) refillLocked(ts *tenantState) {
	now := p.now()
	dt := now.Sub(ts.lastRefill).Seconds()
	ts.lastRefill = now
	if dt <= 0 {
		return
	}
	if p.cfg.QuotaRPS > 0 {
		ts.reqTokens = math.Min(ts.reqTokens+dt*p.cfg.QuotaRPS, p.reqBurst())
	}
	if p.cfg.QuotaBytesPerSec > 0 {
		ts.byteTokens = math.Min(ts.byteTokens+dt*p.cfg.QuotaBytesPerSec, p.byteBurst())
	}
}

// tokenDelay is how long a bucket refilling at rate/sec needs to grow
// by `need` tokens — the Retry-After hint.
func tokenDelay(need, rate float64) time.Duration {
	return time.Duration(need / rate * float64(time.Second))
}

// Allow answers whether tenant may spend one request right now. A
// false verdict carries the Retry-After the 429 should advertise.
func (p *TenantPlane) Allow(tenant string) (bool, time.Duration) {
	if p.cfg.QuotaRPS <= 0 && p.cfg.QuotaBytesPerSec <= 0 {
		return true, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ts := p.stateLocked(tenant)
	p.refillLocked(ts)
	var retry time.Duration
	if p.cfg.QuotaRPS > 0 && ts.reqTokens < 1 {
		retry = tokenDelay(1-ts.reqTokens, p.cfg.QuotaRPS)
	}
	if p.cfg.QuotaBytesPerSec > 0 && ts.byteTokens < 1 {
		if d := tokenDelay(1-ts.byteTokens, p.cfg.QuotaBytesPerSec); d > retry {
			retry = d
		}
	}
	if retry > 0 {
		ts.rejected.Inc()
		p.rejQuota.Add(1)
		return false, retry
	}
	if p.cfg.QuotaRPS > 0 {
		ts.reqTokens--
	}
	return true, 0
}

// DebitBytes meters n payload bytes against tenant: the labeled bytes
// counter and the byte-quota bucket move together under one lock, so
// bytes admitted and bytes metered cannot diverge (the invariant the
// fairness suite property-tests).
func (p *TenantPlane) DebitBytes(tenant string, n int64) {
	if n < 0 {
		return
	}
	p.mu.Lock()
	ts := p.stateLocked(tenant)
	ts.bytes.Add(n)
	if p.cfg.QuotaBytesPerSec > 0 {
		p.refillLocked(ts)
		ts.byteTokens -= float64(n)
	}
	p.mu.Unlock()
}

// Acquire claims one admission slot for tenant. When the pool is
// saturated the request waits in its tenant's queue and the queues
// are drained by deficit round-robin over the configured weights —
// a releasing request hands its slot directly to the chosen waiter,
// so the pool stays full while anyone is queued and new arrivals
// cannot barge. ok=false (queue full, plane draining, or the caller's
// context cancelled) means answer 503. release must be called exactly
// once per successful Acquire; calling it more than once is safe.
func (p *TenantPlane) Acquire(r *http.Request, tenant string) (release func(), ok bool) {
	if p.pool == nil {
		return func() {}, true
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejQueue.Add(1)
		return nil, false
	}
	ts := p.stateLocked(tenant)
	if p.queued.Load() == 0 {
		select {
		case p.pool <- struct{}{}:
			ts.requests.Inc()
			p.setInflightLocked()
			p.mu.Unlock()
			return p.releaseFunc(), true
		default:
		}
	}
	if p.queued.Load() >= int64(p.depth) {
		p.mu.Unlock()
		p.rejQueue.Add(1)
		return nil, false
	}
	w := &tenantWaiter{ts: ts, res: make(chan bool, 1)}
	ts.waiters = append(ts.waiters, w)
	if !ts.inRing {
		ts.inRing = true
		p.ring = append(p.ring, ts)
	}
	p.queued.Add(1)
	ts.queueWaits.Inc()
	p.mu.Unlock()

	select {
	case granted := <-w.res:
		if !granted {
			p.rejQueue.Add(1)
			return nil, false
		}
		p.mu.Lock()
		ts.requests.Inc()
		p.mu.Unlock()
		return p.releaseFunc(), true
	case <-r.Context().Done():
		p.mu.Lock()
		if w.resolved {
			// The grant raced the cancel. The slot is ours; pass it
			// on (or free it) instead of leaking it.
			p.mu.Unlock()
			if granted := <-w.res; granted {
				p.release()
			}
			return nil, false
		}
		p.removeWaiterLocked(w)
		p.mu.Unlock()
		return nil, false
	}
}

func (p *TenantPlane) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(p.release) }
}

func (p *TenantPlane) release() {
	p.mu.Lock()
	if !p.closed {
		if w, ok := p.nextLocked(); ok {
			// Slot handoff: the token stays in the pool and the
			// waiter inherits it.
			p.setInflightLocked()
			p.mu.Unlock()
			w.res <- true
			return
		}
	}
	select {
	case <-p.pool:
	default:
		// Unreachable while every release pairs an acquired slot;
		// guarded so a broken invariant degrades instead of deadlocks.
	}
	p.setInflightLocked()
	p.mu.Unlock()
}

// nextLocked runs the DRR scan: walk the active ring, topping up each
// queue's deficit by its weight as the ring pointer passes, and pop
// the head of the first queue whose deficit covers one admission.
func (p *TenantPlane) nextLocked() (*tenantWaiter, bool) {
	for len(p.ring) > 0 {
		if p.ringIdx >= len(p.ring) {
			p.ringIdx = 0
		}
		ts := p.ring[p.ringIdx]
		if len(ts.waiters) == 0 {
			p.dropRingLocked(p.ringIdx)
			continue
		}
		if ts.deficit < 1 {
			p.ringIdx++
			if p.ringIdx >= len(p.ring) {
				p.ringIdx = 0
			}
			next := p.ring[p.ringIdx]
			next.deficit += next.weight
			continue
		}
		ts.deficit--
		w := ts.waiters[0]
		ts.waiters = ts.waiters[1:]
		p.queued.Add(-1)
		w.resolved = true
		if len(ts.waiters) == 0 {
			p.dropRingLocked(p.ringIdx)
		}
		return w, true
	}
	return nil, false
}

// dropRingLocked retires ring[i] (its queue emptied); the deficit
// resets so a tenant cannot bank credit across idle periods.
func (p *TenantPlane) dropRingLocked(i int) {
	ts := p.ring[i]
	ts.inRing = false
	ts.deficit = 0
	p.ring = append(p.ring[:i], p.ring[i+1:]...)
	if p.ringIdx > i {
		p.ringIdx--
	}
	if p.ringIdx >= len(p.ring) {
		p.ringIdx = 0
	}
}

func (p *TenantPlane) removeWaiterLocked(w *tenantWaiter) {
	ts := w.ts
	for i, x := range ts.waiters {
		if x == w {
			ts.waiters = append(ts.waiters[:i], ts.waiters[i+1:]...)
			p.queued.Add(-1)
			break
		}
	}
	if len(ts.waiters) == 0 && ts.inRing {
		for i, q := range p.ring {
			if q == ts {
				p.dropRingLocked(i)
				break
			}
		}
	}
}

// FailWaiters flushes every queued admission with a drain verdict and
// stops future enqueues and handoffs. Drain calls it before filling
// the pool, so the fill-to-capacity barrier cannot deadlock against
// parked waiters and no queue slot outlives the drain.
func (p *TenantPlane) FailWaiters() {
	p.mu.Lock()
	p.closed = true
	var failed []*tenantWaiter
	for _, ts := range p.states {
		for _, w := range ts.waiters {
			w.resolved = true
			failed = append(failed, w)
		}
		ts.waiters = nil
		ts.inRing = false
		ts.deficit = 0
	}
	p.ring = nil
	p.ringIdx = 0
	p.queued.Store(0)
	p.mu.Unlock()
	for _, w := range failed {
		w.res <- false
	}
}

type admissionReleaseKey struct{}

// WithAdmissionRelease stashes a successful Acquire's release on the
// request context, so a streaming handler further down the stack can
// hand the slot back early (release is idempotent — the admit
// wrapper's deferred call stays correct).
func WithAdmissionRelease(r *http.Request, release func()) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), admissionReleaseKey{}, release))
}

// ReleaseAdmissionEarly returns a streaming request's admission slot
// before the stream body runs — but only when the plane has a chunk
// cap, because the per-chunk slots then pace the stream. Without a
// cap there is no other bound on stream concurrency, so the slot
// stays held for the stream's whole life (the pre-tenant behavior).
//
// The asymmetry this removes: DRR balances admission grants, not
// hold times, so one scan pinning a slot for its whole multi-chunk
// stream stretches a point tenant's tail to the stream length no
// matter the weights. With the cap configured, the scan's cost is
// paid per chunk instead, which is the grain the scheduler can see.
func (p *TenantPlane) ReleaseAdmissionEarly(r *http.Request) {
	if p.cfg.MaxScanInflight <= 0 {
		return
	}
	if release, ok := r.Context().Value(admissionReleaseKey{}).(func()); ok {
		release()
	}
}

// AcquireChunk claims one of the tenant's in-flight chunk slots — the
// cap that stops a streaming scan's chunk train from occupying every
// engine worker at once. ok=false means the caller's context was
// cancelled while waiting; the chunk tally still counts the attempt.
func (p *TenantPlane) AcquireChunk(ctx context.Context, tenant string) (release func(), ok bool) {
	p.mu.Lock()
	ts := p.stateLocked(tenant)
	ts.chunks.Inc()
	sem := ts.chunkSem
	p.mu.Unlock()
	if sem == nil {
		return func() {}, true
	}
	select {
	case sem <- struct{}{}:
		var once sync.Once
		return func() { once.Do(func() { <-sem }) }, true
	case <-ctx.Done():
		return nil, false
	}
}

func (p *TenantPlane) setInflightLocked() {
	if p.inflight != nil {
		p.inflight.Set(float64(len(p.pool)))
	}
}

// Queued is the total waiters parked across all tenant queues.
func (p *TenantPlane) Queued() int64 { return p.queued.Load() }

// InflightLen is the admission slots currently held (0 with no pool).
func (p *TenantPlane) InflightLen() int {
	if p.pool == nil {
		return 0
	}
	return len(p.pool)
}

// Totals returns the plane-wide rejection tallies: quota 429s and
// queue-full/draining 503s.
func (p *TenantPlane) Totals() (rejectedQuota, rejectedQueue int64) {
	return p.rejQuota.Load(), p.rejQueue.Load()
}

// TenantStat is one tenant's /v1/stats scorecard row.
type TenantStat struct {
	Tenant        string  `json:"tenant"`
	Weight        float64 `json:"weight"`
	Requests      int64   `json:"requests"`
	Bytes         int64   `json:"bytes"`
	RejectedQuota int64   `json:"rejected_quota"`
	QueueWaits    int64   `json:"queue_waits"`
	Chunks        int64   `json:"chunks"`
	Queued        int     `json:"queued"`
}

// Stats renders the per-tenant scorecard, sorted by tenant id. The
// default tenant is omitted: untenanted deployments keep their
// pre-tenant stats shape.
func (p *TenantPlane) Stats() []TenantStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantStat, 0, len(p.states))
	for id, ts := range p.states {
		if id == DefaultTenant {
			continue
		}
		out = append(out, TenantStat{
			Tenant:        id,
			Weight:        ts.weight,
			Requests:      ts.requests.Value(),
			Bytes:         ts.bytes.Value(),
			RejectedQuota: ts.rejected.Value(),
			QueueWaits:    ts.queueWaits.Value(),
			Chunks:        ts.chunks.Value(),
			Queued:        len(ts.waiters),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
