package server

import (
	"container/list"
	"sync"
	"time"
)

// defaultMaxClients bounds the limiter's per-client state: beyond it,
// the least-recently-seen client's bucket is dropped (it refills from
// full on return, which errs toward admitting — the bound exists to cap
// memory under client-ID churn, not to tighten the limit).
const defaultMaxClients = 4096

// rateLimiter is a per-client token bucket: each client id refills at
// rate tokens/second up to burst, and one request costs one token.
// It is the server's first backpressure stage (429 Too Many Requests);
// the admission queue behind it is the second (503).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu         sync.Mutex
	buckets    map[string]*bucket
	lru        *list.List // front = most recently seen; values are ids
	maxClients int
}

type bucket struct {
	tokens float64
	last   time.Time
	elem   *list.Element
}

// newRateLimiter returns a limiter at rate tokens/second with the given
// burst. now is the clock (nil = time.Now; tests inject a fake).
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:       rate,
		burst:      float64(burst),
		now:        now,
		buckets:    map[string]*bucket{},
		lru:        list.New(),
		maxClients: defaultMaxClients,
	}
}

// allow spends one token of id's bucket. When the bucket is empty it
// returns false and how long until a token is available (the 429
// Retry-After hint).
func (l *rateLimiter) allow(id string) (ok bool, retry time.Duration) {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[id]
	if b == nil {
		b = &bucket{tokens: l.burst, last: t}
		b.elem = l.lru.PushFront(id)
		l.buckets[id] = b
		for len(l.buckets) > l.maxClients {
			back := l.lru.Back()
			delete(l.buckets, back.Value.(string))
			l.lru.Remove(back)
		}
	} else {
		if dt := t.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = t
		l.lru.MoveToFront(b.elem)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if l.rate <= 0 {
		return false, time.Second
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}
