package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"outcore/internal/layout"
)

// TestConcurrentTileReadWriteRace hammers one array with concurrent
// GETs and PUTs of the same tile AND of overlapping-but-unaligned
// tiles. Under -race this proves the per-array tile lock serializes
// access to the shared pinned tile buffer (a PUT decodes into the very
// slice a coalesced GET encodes from); value-wise, every element a GET
// returns must be exactly one of the constants some PUT wrote (or the
// initial zero) — a torn float64 mixing two writes would fall outside
// the set.
func TestConcurrentTileReadWriteRace(t *testing.T) {
	const (
		writers = 4
		readers = 4
		rounds  = 40
	)
	ts := newTestServer(t, Config{MaxInflight: writers + readers, QueueDepth: writers + readers}, nil)
	ts.createArray(t, "A", 16, 16)

	// Same-key PUTs plus overlapping unaligned boxes: the unaligned
	// pair exercises the overlap-invalidation path the engine contract
	// is about, not just the shared-slice race.
	boxes := []string{
		"lo=0,0&hi=8,8",
		"lo=2,2&hi=10,10",
		"lo=4,0&hi=12,8",
	}
	valid := map[float64]bool{0: true}
	for v := 1; v <= writers; v++ {
		valid[float64(v)] = true
	}

	var wg sync.WaitGroup
	for wtr := 1; wtr <= writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wtr)))
			for i := 0; i < rounds; i++ {
				q := boxes[rng.Intn(len(boxes))]
				payload := make([]float64, 8*8)
				for j := range payload {
					payload[j] = float64(wtr)
				}
				status, body, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?%s", q), encodePayload(payload))
				if status != http.StatusNoContent {
					t.Errorf("writer %d: status %d, body %s", wtr, status, body)
					return
				}
			}
		}(wtr)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + rd)))
			for i := 0; i < rounds; i++ {
				q := boxes[rng.Intn(len(boxes))]
				status, body, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?%s", q), nil)
				if status != http.StatusOK {
					t.Errorf("reader %d: status %d, body %s", rd, status, body)
					return
				}
				got := make([]float64, 8*8)
				decodePayload(body, got)
				for j, v := range got {
					if !valid[v] {
						t.Errorf("reader %d: element %d is %v, not any written constant (torn value)", rd, j, v)
						return
					}
				}
			}
		}(rd)
	}
	wg.Wait()
}

// TestReadYourWritesAcrossFlights pins down the flight-key versioning:
// a GET issued after a PUT returned 204 must not join a coalescing
// flight whose leader read the tile before the write applied. The test
// parks a deliberately stale flight under the pre-write key, performs
// the write, and checks the post-write GET starts its own flight and
// returns the written data while the stale flight is still in the map.
func TestReadYourWritesAcrossFlights(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 8, 8)

	box := layout.NewBox([]int64{0, 0}, []int64{8, 8})
	lk := ts.srv.lockFor("A")
	staleKey := tileFlightKey(lk, "A", box)

	started := make(chan struct{})
	block := make(chan struct{})
	staleDone := make(chan []byte, 1)
	go func() {
		payload, _, _, _ := ts.srv.flights.do(staleKey, func() ([]byte, uint64, error) {
			close(started)
			<-block
			return encodePayload(make([]float64, 8*8)), 0, nil // pre-write zeros
		})
		staleDone <- payload
	}()
	<-started

	payload := make([]float64, 8*8)
	for i := range payload {
		payload[i] = float64(i) + 1
	}
	status, out, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), encodePayload(payload))
	if status != http.StatusNoContent {
		t.Fatalf("put: %d %s", status, out)
	}
	if got := tileFlightKey(lk, "A", box); got == staleKey {
		t.Fatalf("flight key %q did not change across an acknowledged write", got)
	}

	// The stale flight is still in the map (blocked); a fresh GET must
	// bypass it and observe the acknowledged write.
	status, out, _ = ts.do(t, http.MethodGet, ts.url("/v1/arrays/A/tile?lo=0,0&hi=8,8"), nil)
	if status != http.StatusOK {
		t.Fatalf("get: %d %s", status, out)
	}
	got := make([]float64, 8*8)
	decodePayload(out, got)
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("post-write GET[%d] = %v, want %v: joined a pre-write flight", i, got[i], payload[i])
		}
	}
	close(block)
	<-staleDone
}

// TestSizeLimits covers the data-plane abuse caps: array creation is
// bounded by an overflow-checked element count and tile requests by a
// per-request element limit.
func TestSizeLimits(t *testing.T) {
	ts := newTestServer(t, Config{MaxArrayElems: 64, MaxTileElems: 16}, nil)

	create := func(dims string) int {
		body := []byte(fmt.Sprintf(`{"name":"X","dims":[%s]}`, dims))
		status, _, _ := ts.do(t, http.MethodPost, ts.url("/v1/arrays"), body)
		return status
	}
	// A dims product that overflows int64 must be a 400, not a panic or
	// a giant allocation (1<<62 squared wraps).
	if status := create("4611686018427387904,4611686018427387904"); status != http.StatusBadRequest {
		t.Errorf("overflowing dims: status %d, want 400", status)
	}
	// Over the configured element cap: 400.
	if status := create("9,9"); status != http.StatusBadRequest {
		t.Errorf("oversized array: status %d, want 400", status)
	}
	// Within the cap: created.
	if status := create("8,8"); status != http.StatusCreated {
		t.Fatalf("in-bounds array: status %d, want 201", status)
	}

	// A tile request over MaxTileElems is 413 for both verbs; an
	// in-bounds tile still works.
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/X/tile?lo=0,0&hi=8,8"), nil); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized tile GET: status %d, want 413", status)
	}
	big := encodePayload(make([]float64, 8*8))
	if status, _, _ := ts.do(t, http.MethodPut, ts.url("/v1/arrays/X/tile?lo=0,0&hi=8,8"), big); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized tile PUT: status %d, want 413", status)
	}
	if status, _, _ := ts.do(t, http.MethodGet, ts.url("/v1/arrays/X/tile?lo=0,0&hi=4,4"), nil); status != http.StatusOK {
		t.Errorf("in-bounds tile GET: status %d, want 200", status)
	}

	// Default config gets the documented default caps.
	ts2 := newTestServer(t, Config{}, nil)
	body := []byte(`{"name":"Y","dims":[1000000000,1000000000]}`)
	if status, _, _ := ts2.do(t, http.MethodPost, ts2.url("/v1/arrays"), body); status != http.StatusBadRequest {
		t.Errorf("1e18-element array under default cap: status %d, want 400", status)
	}
}
