// Package server is occd's serving core: an HTTP API that exposes
// disk-resident out-of-core arrays through the concurrent tile engine.
// It is the paper's thesis turned into a service boundary — many
// clients asking for rectangular tiles, the engine underneath turning
// them into few, large, layout-aware backend calls.
//
// The serving core does real multi-tenant work on top of the engine:
//
//   - Request coalescing: concurrent GETs of the same tile join one
//     flight (one acquire, one payload encode, one backend read), with
//     an exact exported count of coalesced requests.
//   - Admission control: per-client token-bucket rate limiting (429 +
//     Retry-After) in front of a bounded wait queue over a bounded
//     worker semaphore (503 + Retry-After when the queue overflows), so
//     overload degrades with backpressure instead of collapse.
//   - Graceful drain: new work is refused while in-flight requests
//     finish (Drain itself waits them out, even when the HTTP server's
//     shutdown grace period expired first), then every dirty tile is
//     flushed and the backends synced and closed, so an acknowledged
//     write survives a SIGTERM.
//   - Consistency: tile access is serialized per array — GETs share a
//     reader lock, a PUT excludes them — so concurrent clients can
//     never tear the pinned in-memory tile a request is encoding or
//     decoding, and a GET issued after a PUT's 204 observes that write
//     (the write generation versions the coalescing flight key).
//   - Abuse limits: array creation caps the overflow-checked element
//     count (Config.MaxArrayElems, 400) and tile requests cap the
//     clipped per-request element count (Config.MaxTileElems, 413), so
//     a client cannot drive unbounded allocations.
//
// API (payloads are raw little-endian float64, box-local row-major;
// clients offering "Accept-Encoding: x-ooc-gorilla" on tile GETs get
// the body as a compressed codec frame instead, and may PUT one with
// "Content-Encoding: x-ooc-gorilla" — old clients that send neither
// header keep the raw format):
//
//	GET  /healthz                            liveness ("ok" / 503 "draining")
//	GET  /metrics[?format=json]              obs registry exposition
//	GET  /v1/stats                           live engine + server counters
//	GET  /v1/arrays                          list arrays
//	POST /v1/arrays                          create: {"name","dims",["layout"]}
//	GET  /v1/arrays/{name}                   one array's metadata
//	GET  /v1/arrays/{name}/tile?lo=i,j&hi=k,l   read a tile
//	PUT  /v1/arrays/{name}/tile?lo=i,j&hi=k,l   write a tile
//	POST /v1/arrays/{name}/batch             many tile ops, one request (ops.go)
//	GET  /v1/arrays/{name}/scan?lo=&hi=      streaming layout-aware range scan (ops.go)
//	POST /v1/arrays/{name}/reduce            pushed-down sum/min/max/count (ops.go)
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/obs"
	"outcore/internal/ooc"
)

// Data-plane size limits. Both are per-server caps with sane
// defaults; Config fields set to a negative value disable them.
const (
	// DefaultMaxArrayElems caps a created array's total element count
	// (2^28 elements = 2 GiB of float64 backing).
	DefaultMaxArrayElems = int64(1) << 28
	// DefaultMaxTileElems caps a single tile request's element count
	// after clipping (2^22 elements = 32 MiB payload).
	DefaultMaxTileElems = int64(1) << 22
)

// Config tunes the serving core. The zero value gets sane defaults
// from New.
type Config struct {
	// MaxInflight bounds how many requests may operate on the engine
	// concurrently (default 2*GOMAXPROCS). Excess admitted requests
	// wait in the queue.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for an inflight
	// slot (default 64). Beyond it the server answers 503.
	QueueDepth int
	// RatePerSec is the per-client token refill rate; 0 disables rate
	// limiting. Clients are keyed by the X-Client-ID header, falling
	// back to the remote address.
	RatePerSec float64
	// Burst is the per-client bucket capacity (default: RatePerSec
	// rounded up, at least 1).
	Burst int
	// RetryAfter is the hint returned with 503 responses (default 1s);
	// 429 responses compute the exact token refill wait instead.
	RetryAfter time.Duration
	// MaxArrayElems caps the total element count of a created array
	// (overflow-checked product of its dims). 0 means
	// DefaultMaxArrayElems; negative disables the cap. Beyond it,
	// POST /v1/arrays answers 400.
	MaxArrayElems int64
	// MaxTileElems caps one tile request's element count after
	// clipping. 0 means DefaultMaxTileElems; negative disables the
	// cap. Beyond it, tile GET/PUT answer 413.
	MaxTileElems int64
	// DurablePuts makes tile PUTs durable before the 204: the written
	// box is flushed through the engine and the array synced. On a
	// WAL-enabled disk the sync is a group-committed log fsync shared
	// by every concurrent PUT in the commit window; without a WAL it
	// is a real per-PUT backend fsync.
	DurablePuts bool
	// NodeID names this server as a cluster storage node (occd
	// -cluster-node). Purely informational: it surfaces in /v1/stats so
	// operators and the router's scorecard can tell nodes apart. Empty
	// outside cluster mode.
	NodeID string
	// Tenants is the multi-tenant isolation plane: DRR weights,
	// per-tenant request/byte quotas, and the in-flight chunk cap. The
	// zero value keeps every tenant equal and unmetered.
	Tenants TenantConfig
	// Obs supplies the metrics registry behind /metrics (a registry is
	// created when absent, so the endpoints always work).
	Obs *obs.Sink
	// Clock overrides time.Now for the rate limiter (tests).
	Clock func() time.Time
}

// Server serves one Disk through one tile engine — a single
// ooc.Engine or an ooc.ShardedEngine partitioning the plane. Create
// with New, mount Handler, and call Drain after the HTTP server has
// shut down.
type Server struct {
	disk *ooc.Disk
	eng  ooc.TileEngine
	cfg  Config
	reg  *obs.Registry
	mux  *http.ServeMux

	flights   flightGroup
	limiter   *rateLimiter // nil = unlimited
	sem       chan struct{}
	tenants   *TenantPlane
	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error

	// locks serializes the data plane per array; see tileLock. The map
	// only grows, bounded by the number of arrays ever addressed.
	lockMu sync.Mutex
	locks  map[string]*tileLock

	met serverMetrics
}

// tileLock serializes tile data access for one array. Tile GETs read
// the pinned in-memory tile's buffer and tile PUTs write that same
// buffer in place, and the engine's consistency contract (see
// ooc.Engine) forbids releasing a tile dirty while overlapping pinned
// tiles are held elsewhere — a rule the schedule guarantees for
// codegen but that two arbitrary HTTP clients can violate. Readers
// therefore share the lock and a writer excludes them, for aligned and
// unaligned overlapping boxes alike.
//
// gen counts acknowledged writes. It versions the GET flight key so a
// read that starts after a completed PUT can never join a flight whose
// leader acquired the tile before that write applied
// (read-your-writes; see flightGroup).
//
// boxGens is the cluster replication plane's per-box write-generation
// table: a PUT carrying X-Tile-Gen records its generation under the
// box it wrote, and a GET reports the max generation over the
// recorded boxes overlapping it (an unaligned read is as fresh as the
// freshest write it can observe). Overlapping boxes always share a
// routing grid tile (the router decomposes every request along the
// grid), so their generations are totally ordered and comparable even
// when the box shapes differ — a client PUT of a sub-box, a hint
// replay, and a read-repair rewrite of a read piece all compete in
// one order. A PUT applies only to the cells no strictly-newer
// recorded box covers (newerOverlaps/subtractBoxes), which makes the
// final bytes a pure function of the set of writes seen, independent
// of arrival order — replicas that saw the same writes hold the same
// bytes AND report the same generations, so equal reported
// generations really mean equal data and read-repair has a sound
// signal. Entries are written under mu held exclusively (the PUT
// path) and read under the shared lock, and are bounded by the
// distinct boxes ever PUT with a generation — the router's
// replication grid in cluster mode, none otherwise. The table is
// deliberately volatile: a crashed node forgets its generations,
// reports 0, loses every freshness comparison, and gets read-repaired
// by the replica that remembers.
type tileLock struct {
	mu  sync.RWMutex
	gen atomic.Uint64

	boxGens []boxGen
	genIdx  map[string]int
}

// boxGen is one recorded (box, write generation) pair.
type boxGen struct {
	box layout.Box
	gen uint64
}

// newerOverlaps returns the recorded boxes overlapping box whose
// generation is strictly newer than g — the writes that supersede (a
// part of) an incoming generation-g write. Callers hold mu in either
// mode.
func (l *tileLock) newerOverlaps(box layout.Box, g uint64) []layout.Box {
	var out []layout.Box
	for i := range l.boxGens {
		if l.boxGens[i].gen > g && l.boxGens[i].box.Overlaps(box) {
			out = append(out, l.boxGens[i].box)
		}
	}
	return out
}

// setGen records g for the exact box. Callers hold mu exclusively.
func (l *tileLock) setGen(key string, box layout.Box, g uint64) {
	if i, ok := l.genIdx[key]; ok {
		l.boxGens[i].gen = g
		return
	}
	if l.genIdx == nil {
		l.genIdx = map[string]int{}
	}
	l.genIdx[key] = len(l.boxGens)
	l.boxGens = append(l.boxGens, boxGen{box: box, gen: g})
}

// overlapGen returns the max generation over recorded boxes that
// overlap box. Callers hold mu in either mode.
func (l *tileLock) overlapGen(box layout.Box) uint64 {
	var max uint64
	for i := range l.boxGens {
		if l.boxGens[i].gen > max && l.boxGens[i].box.Overlaps(box) {
			max = l.boxGens[i].gen
		}
	}
	return max
}

// subtractBoxes returns the parts of box covered by none of covers, as
// disjoint boxes. Empty result means covers blanket the whole box.
func subtractBoxes(box layout.Box, covers []layout.Box) []layout.Box {
	remain := []layout.Box{box}
	for _, c := range covers {
		var next []layout.Box
		for _, r := range remain {
			next = subtractBox(next, r, c)
		}
		remain = next
		if len(remain) == 0 {
			break
		}
	}
	return remain
}

// subtractBox appends the parts of a outside b to out: a guillotine
// split peeling at most two slabs per dimension off a, leaving the
// core a∩b dropped.
func subtractBox(out []layout.Box, a, b layout.Box) []layout.Box {
	if !a.Overlaps(b) {
		return append(out, a)
	}
	lo := append([]int64(nil), a.Lo...)
	hi := append([]int64(nil), a.Hi...)
	for d := range lo {
		if b.Lo[d] > lo[d] {
			slabHi := append([]int64(nil), hi...)
			slabHi[d] = b.Lo[d]
			out = append(out, layout.NewBox(append([]int64(nil), lo...), slabHi))
			lo[d] = b.Lo[d]
		}
		if b.Hi[d] < hi[d] {
			slabLo := append([]int64(nil), lo...)
			slabLo[d] = b.Hi[d]
			out = append(out, layout.NewBox(slabLo, append([]int64(nil), hi...)))
			hi[d] = b.Hi[d]
		}
	}
	return out
}

// copyBoxLocal copies region's elements from src to dst, both box-local
// row-major buffers of box (region must lie inside box). Runs along
// the innermost dimension are contiguous at identical offsets in both
// buffers, so the copy moves whole rows.
func copyBoxLocal(dst, src []float64, box, region layout.Box) {
	rank := len(box.Lo)
	strides := make([]int64, rank)
	acc := int64(1)
	for d := rank - 1; d >= 0; d-- {
		strides[d] = acc
		acc *= box.Hi[d] - box.Lo[d]
	}
	rowLen := region.Hi[rank-1] - region.Lo[rank-1]
	cur := append([]int64(nil), region.Lo...)
	for {
		var off int64
		for d := 0; d < rank; d++ {
			off += (cur[d] - box.Lo[d]) * strides[d]
		}
		copy(dst[off:off+rowLen], src[off:off+rowLen])
		d := rank - 2
		for d >= 0 {
			cur[d]++
			if cur[d] < region.Hi[d] {
				break
			}
			cur[d] = region.Lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// lockFor returns (creating on first use) the array's tile lock.
func (s *Server) lockFor(name string) *tileLock {
	s.lockMu.Lock()
	defer s.lockMu.Unlock()
	l, ok := s.locks[name]
	if !ok {
		l = &tileLock{}
		s.locks[name] = l
	}
	return l
}

// serverMetrics are the serving-layer registry series.
type serverMetrics struct {
	requests      *obs.Counter
	errors        *obs.Counter
	coalesced     *obs.Counter
	rejectedRate  *obs.Counter
	rejectedQueue *obs.Counter
	inflight      *obs.Gauge
	latency       *obs.Histogram
	wireRaw       *obs.Counter // logical tile bytes moved over HTTP
	wireBytes     *obs.Counter // bytes actually on the wire (after negotiation)
	ops           opsMetrics   // batch/scan/reduce series (ops.go)
}

// WireEncoding is the tile content coding the server negotiates: a
// codec frame (see ooc.AppendFrame) instead of raw little-endian
// float64. Offered via Accept-Encoding on GET and declared via
// Content-Encoding on PUT.
const WireEncoding = "x-ooc-gorilla"

// Cluster replication headers. The router versions every replicated
// write with a per-tile generation; nodes gate PUTs on it and report
// it on GETs, which is what lets the router rank replicas by freshness
// and repair the stale ones. Requests without these headers get the
// exact pre-cluster behavior.
const (
	// TileGenHeader carries a write generation: on a PUT request, the
	// generation to record (cells covered by an overlapping recorded
	// box with a newer generation keep the newer bytes; the write lands
	// on the rest); on GET and PUT responses, the node's recorded
	// generation.
	TileGenHeader = "X-Tile-Gen"
	// TileWantGenHeader, set to any non-empty value on a GET, asks the
	// node to report the box's write generation on the response.
	TileWantGenHeader = "X-Tile-Want-Gen"
	// TileStaleHeader marks a 204 PUT response whose write was skipped
	// entirely because newer recorded generations cover every cell of
	// the box; the response's TileGenHeader reports the newest of them.
	TileStaleHeader = "X-Tile-Stale"
)

// acceptsWireEncoding reports whether an Accept-Encoding header offers
// WireEncoding (comma-separated codings, optional ;q parameters).
func acceptsWireEncoding(header string) bool {
	for _, part := range strings.Split(header, ",") {
		c, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(c) == WireEncoding {
			return true
		}
	}
	return false
}

// MaxShards bounds the -shards flag: past it, per-shard caches get so
// small the plane is all eviction churn and the per-shard stats stop
// meaning anything.
const MaxShards = 64

// ValidateShards rejects shard counts outside 1..MaxShards. Commands
// report the error under the named-flag convention
// ("occd: -shards: ...") and exit 2.
func ValidateShards(n int) error {
	if n < 1 || n > MaxShards {
		return fmt.Errorf("shard count %d out of range (valid: 1..%d)", n, MaxShards)
	}
	return nil
}

// BuildEngine constructs the tile plane a command serves: one Engine
// for shards <= 1, a ShardedEngine otherwise. Callers validate shards
// first (ValidateShards).
func BuildEngine(d *ooc.Disk, shards int, o ooc.EngineOptions) ooc.TileEngine {
	if shards > 1 {
		return ooc.NewShardedEngine(d, shards, o)
	}
	return ooc.NewEngine(d, o)
}

// New wires a serving core over the disk and engine. The engine must
// be running over the same disk; the server takes ownership of both at
// Drain (engine closed, disk synced and closed).
func New(d *ooc.Disk, eng ooc.TileEngine, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.RatePerSec))
	}
	if cfg.MaxArrayElems == 0 {
		cfg.MaxArrayElems = DefaultMaxArrayElems
	}
	if cfg.MaxTileElems == 0 {
		cfg.MaxTileElems = DefaultMaxTileElems
	}
	reg := cfg.Obs.MetricsOf()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		disk:  d,
		eng:   eng,
		cfg:   cfg,
		reg:   reg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		locks: map[string]*tileLock{},
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.Burst, cfg.Clock)
	}
	s.met = serverMetrics{
		requests:      reg.Counter("occd_requests_total", "data-plane requests admitted"),
		errors:        reg.Counter("occd_errors_total", "data-plane requests that failed (5xx)"),
		coalesced:     reg.Counter("occd_coalesced_requests_total", "tile reads served by joining an in-flight fetch"),
		rejectedRate:  reg.Counter("occd_rejected_ratelimit_total", "requests rejected by the per-client rate limit (429)"),
		rejectedQueue: reg.Counter("occd_rejected_queue_total", "requests rejected by the full admission queue (503)"),
		inflight:      reg.Gauge("occd_inflight", "requests currently holding an engine slot"),
		latency: reg.Histogram("occd_request_seconds",
			"admitted request latency in seconds", obs.ExpBuckets(1e-5, 4, 10)),
		wireRaw:   reg.Counter("occd_wire_raw_bytes_total", "logical tile payload bytes served or accepted"),
		wireBytes: reg.Counter("occd_wire_bytes_total", "tile payload bytes on the wire after content negotiation"),
		ops: opsMetrics{
			batchRequests:  reg.Counter("occd_batch_requests_total", "batch requests admitted"),
			batchOps:       reg.Counter("occd_batch_ops_total", "individual ops carried by batch requests"),
			batchOpErrors:  reg.Counter("occd_batch_op_errors_total", "batch ops that answered a per-op 4xx/5xx"),
			scanRequests:   reg.Counter("occd_scan_requests_total", "streaming range scans started"),
			scanChunks:     reg.Counter("occd_scan_chunks_total", "scan chunks framed and sent"),
			scanResumes:    reg.Counter("occd_scan_resumes_total", "scans resumed from a cursor token"),
			reduceRequests: reg.Counter("occd_reduce_requests_total", "pushed-down reductions served"),
			reduceElems:    reg.Counter("occd_reduce_elems_total", "elements folded by pushed-down reductions"),
		},
	}
	s.tenants = NewTenantPlane(TenantPlaneOpts{
		Config:       cfg.Tenants,
		MetricPrefix: "occd",
		Reg:          reg,
		Pool:         s.sem,
		QueueDepth:   cfg.QueueDepth,
		Clock:        cfg.Clock,
		Inflight:     s.met.inflight,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/arrays", s.admit(s.handleArrayList))
	s.mux.HandleFunc("POST /v1/arrays", s.admit(s.handleArrayCreate))
	s.mux.HandleFunc("GET /v1/arrays/{name}", s.admit(s.handleArrayGet))
	s.mux.HandleFunc("GET /v1/arrays/{name}/tile", s.admit(s.handleTileGet))
	s.mux.HandleFunc("PUT /v1/arrays/{name}/tile", s.admit(s.handleTilePut))
	s.mux.HandleFunc("POST /v1/arrays/{name}/batch", s.admit(s.handleBatch))
	s.mux.HandleFunc("GET /v1/arrays/{name}/scan", s.admit(s.handleScan))
	s.mux.HandleFunc("POST /v1/arrays/{name}/reduce", s.admit(s.handleReduce))
	return s
}

// Handler returns the HTTP handler to mount: the tenant-resolution
// layer (X-Tenant header, /t/<id>/ path prefix, 400 on malformed ids)
// over the route table.
func (s *Server) Handler() http.Handler { return TenantHandler(s.mux) }

// Drain finishes the server's storage side: it stops admitting new
// data-plane work, waits for every in-flight request to finish, then
// flushes every dirty tile through the engine, syncs the backends and
// closes disk and engine. Normally the HTTP server's Shutdown has
// already waited out in-flight requests; when it gave up (drain
// timeout), Drain's own barrier still guarantees no handler is
// mid-engine-operation when the engine closes — otherwise a PUT could
// be acknowledged with 204 while its dirty tile, pinned during Close,
// silently missed the final flush. Requests parked in the tenant
// queues when the barrier closes are failed with 503 up front
// (FailWaiters) — failed, not falsely acknowledged, and no queue slot
// survives the drain. Drain is idempotent; the first error wins.
func (s *Server) Drain() error {
	s.draining.Store(true)
	s.drainOnce.Do(func() {
		// Flush the tenant queues first: a parked waiter holds no slot,
		// so the fill loop below would otherwise wait forever for
		// handed-off slots that keep feeding the queues.
		s.tenants.FailWaiters()
		// Admission of new work is off (draining flag), so filling the
		// inflight semaphore is a barrier over every handler that holds
		// a slot: when the loop completes, no request is touching the
		// engine and every acknowledged write has released its dirty
		// tile, unpinned, for Close to flush.
		for i := 0; i < cap(s.sem); i++ {
			s.sem <- struct{}{}
		}
		err := s.eng.Close()
		if cerr := s.disk.Close(); err == nil {
			err = cerr
		}
		// Release the barrier so queued waiters can run (and fail fast
		// against the closed engine) instead of hanging until their
		// clients give up.
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
		s.drainErr = err
	})
	return s.drainErr
}

// Draining reports whether Drain has begun (healthz flips to 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// clientID keys the rate limiter: the X-Client-ID header when present
// (load balancers and the load harness set it), else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit is the data-plane gate: drain check, per-client rate limit
// (429), per-tenant quotas (429), then the weighted fair admission
// queue — per-tenant queues drained by deficit round-robin over the
// shared inflight pool (503 when the queue is full).
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if s.limiter != nil {
			if ok, retry := s.limiter.allow(clientID(r)); !ok {
				s.met.rejectedRate.Inc()
				w.Header().Set("Retry-After", retrySeconds(retry))
				http.Error(w, "per-client rate limit exceeded", http.StatusTooManyRequests)
				return
			}
		}
		tenant := TenantOf(r)
		if ok, retry := s.tenants.Allow(tenant); !ok {
			s.met.rejectedRate.Inc()
			w.Header().Set("Retry-After", retrySeconds(retry))
			http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
			return
		}
		release, ok := s.tenants.Acquire(r, tenant)
		if !ok {
			s.met.rejectedQueue.Inc()
			w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
			http.Error(w, "admission queue full", http.StatusServiceUnavailable)
			return
		}
		defer release()
		s.met.requests.Inc()
		t0 := time.Now()
		next(w, r)
		s.met.latency.Observe(time.Since(t0).Seconds())
	}
}

// meterWire tallies one tile transfer: the global wire counters the
// compression scorecard reads, and the tenant's byte meter/quota.
func (s *Server) meterWire(tenant string, raw, wire int64) {
	s.met.wireRaw.Add(raw)
	s.met.wireBytes.Add(wire)
	s.tenants.DebitBytes(tenant, raw)
}

// retrySeconds renders a Retry-After value, rounding up to at least 1
// (the header carries whole seconds).
func retrySeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			s.met.errors.Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.met.errors.Inc()
	}
}

// statsPayload is the /v1/stats JSON: live engine counters plus the
// serving-layer counters the load harness reports deltas of. Shards
// (present only for a sharded plane) is the per-shard scorecard: the
// engine-level counters broken out per partition, in shard order.
type statsPayload struct {
	NodeID            string            `json:"node_id,omitempty"`
	Engine            ooc.EngineStats   `json:"engine"`
	HitRate           float64           `json:"hit_rate"`
	Shards            []shardStat       `json:"shards,omitempty"`
	WAL               *ooc.WALStats     `json:"wal,omitempty"`
	Compression       *compressionStats `json:"compression,omitempty"`
	Requests          int64             `json:"requests"`
	Coalesced         int64             `json:"coalesced"`
	RejectedRateLimit int64             `json:"rejected_ratelimit"`
	RejectedQueue     int64             `json:"rejected_queue"`
	Inflight          int64             `json:"inflight"`
	Queued            int64             `json:"queued"`
	Draining          bool              `json:"draining"`
	Ops               opsStats          `json:"ops"`
	// Tenants is the per-tenant scorecard (absent until a non-default
	// tenant shows up, so untenanted deployments keep their shape).
	Tenants []TenantStat `json:"tenants,omitempty"`
}

// opsStats is the batch/scan/reduce scorecard block of /v1/stats.
type opsStats struct {
	BatchRequests  int64 `json:"batch_requests"`
	BatchOps       int64 `json:"batch_ops"`
	BatchOpErrors  int64 `json:"batch_op_errors"`
	ScanRequests   int64 `json:"scan_requests"`
	ScanChunks     int64 `json:"scan_chunks"`
	ScanResumes    int64 `json:"scan_resumes"`
	ReduceRequests int64 `json:"reduce_requests"`
	ReduceElems    int64 `json:"reduce_elems"`
}

// compressionStats is the /v1/stats compression scorecard, present
// when the disk compresses backends or WAL payloads: the disk/WAL
// raw-vs-encoded byte counters, the wire-level tallies, and the
// buffer-arena hit rate behind them.
type compressionStats struct {
	ooc.CompressionStats
	WireRawBytes int64         `json:"wire_raw_bytes"`
	WireBytes    int64         `json:"wire_bytes"`
	Pool         ooc.PoolStats `json:"pool"`
}

// shardStat is one shard's row in the scorecard.
type shardStat struct {
	Shard   int             `json:"shard"`
	Engine  ooc.EngineStats `json:"engine"`
	HitRate float64         `json:"hit_rate"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	p := statsPayload{
		NodeID:            s.cfg.NodeID,
		Engine:            es,
		HitRate:           es.HitRate(),
		Requests:          s.met.requests.Value(),
		Coalesced:         s.met.coalesced.Value(),
		RejectedRateLimit: s.met.rejectedRate.Value(),
		RejectedQueue:     s.met.rejectedQueue.Value(),
		Inflight:          int64(len(s.sem)),
		Queued:            s.tenants.Queued(),
		Draining:          s.draining.Load(),
		Tenants:           s.tenants.Stats(),
		Ops: opsStats{
			BatchRequests:  s.met.ops.batchRequests.Value(),
			BatchOps:       s.met.ops.batchOps.Value(),
			BatchOpErrors:  s.met.ops.batchOpErrors.Value(),
			ScanRequests:   s.met.ops.scanRequests.Value(),
			ScanChunks:     s.met.ops.scanChunks.Value(),
			ScanResumes:    s.met.ops.scanResumes.Value(),
			ReduceRequests: s.met.ops.reduceRequests.Value(),
			ReduceElems:    s.met.ops.reduceElems.Value(),
		},
	}
	if se, ok := s.eng.(*ooc.ShardedEngine); ok {
		for i, ss := range se.ShardStats() {
			p.Shards = append(p.Shards, shardStat{Shard: i, Engine: ss, HitRate: ss.HitRate()})
		}
	}
	p.WAL = s.disk.WALStats()
	if cs := s.disk.CompressionStats(); cs != nil {
		p.Compression = &compressionStats{
			CompressionStats: *cs,
			WireRawBytes:     s.met.wireRaw.Value(),
			WireBytes:        s.met.wireBytes.Value(),
			Pool:             ooc.ReadPoolStats(),
		}
	}
	writeJSON(w, http.StatusOK, p)
}

// arrayInfo is the wire form of an array's metadata.
type arrayInfo struct {
	Name   string  `json:"name"`
	Dims   []int64 `json:"dims"`
	Elems  int64   `json:"elems"`
	Layout string  `json:"layout,omitempty"`
}

func infoOf(ar *ooc.Array) arrayInfo {
	return arrayInfo{Name: ar.Meta.Name, Dims: ar.Meta.Dims, Elems: ar.Meta.Len()}
}

func (s *Server) handleArrayList(w http.ResponseWriter, r *http.Request) {
	arrays := s.disk.Arrays()
	out := make([]arrayInfo, len(arrays))
	for i, ar := range arrays {
		out[i] = infoOf(ar)
	}
	writeJSON(w, http.StatusOK, out)
}

// createRequest is the POST /v1/arrays body. Layout picks the file
// layout the tiles are stored under: "row" (default) or "col".
type createRequest struct {
	Name   string  `json:"name"`
	Dims   []int64 `json:"dims"`
	Layout string  `json:"layout"`
}

func (s *Server) handleArrayCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad create body: %v", err)
		return
	}
	if req.Name == "" || strings.ContainsAny(req.Name, "/\\ \t\n") {
		httpError(w, http.StatusBadRequest, "bad array name %q", req.Name)
		return
	}
	if len(req.Dims) == 0 {
		httpError(w, http.StatusBadRequest, "array needs at least one dimension")
		return
	}
	for _, d := range req.Dims {
		if d <= 0 {
			httpError(w, http.StatusBadRequest, "non-positive extent %d", d)
			return
		}
	}
	elems, ok := checkedProduct(req.Dims)
	if !ok {
		httpError(w, http.StatusBadRequest, "dims %v overflow the element count", req.Dims)
		return
	}
	if lim := s.cfg.MaxArrayElems; lim > 0 && elems > lim {
		httpError(w, http.StatusBadRequest, "array of %d elements exceeds the server limit of %d", elems, lim)
		return
	}
	var l *layout.Layout
	switch req.Layout {
	case "", "row":
		l = layout.RowMajor(req.Dims...)
	case "col":
		l = layout.ColMajor(req.Dims...)
	default:
		httpError(w, http.StatusBadRequest, "unknown layout %q (row, col)", req.Layout)
		return
	}
	ar, err := s.disk.CreateArray(ir.NewArray(req.Name, req.Dims...), l)
	if err != nil {
		if errors.Is(err, ooc.ErrArrayExists) {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			s.met.errors.Inc()
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(ar))
}

func (s *Server) handleArrayGet(w http.ResponseWriter, r *http.Request) {
	ar := s.disk.ArrayByName(r.PathValue("name"))
	if ar == nil {
		httpError(w, http.StatusNotFound, "no array %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, infoOf(ar))
}

// tileTarget resolves {name} + lo/hi query params into a clipped,
// validated box, writing the 4xx response itself on failure.
func (s *Server) tileTarget(w http.ResponseWriter, r *http.Request) (*ooc.Array, layout.Box, bool) {
	ar := s.disk.ArrayByName(r.PathValue("name"))
	if ar == nil {
		httpError(w, http.StatusNotFound, "no array %q", r.PathValue("name"))
		return nil, layout.Box{}, false
	}
	lo, err := parseCoords(r.URL.Query().Get("lo"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad lo: %v", err)
		return nil, layout.Box{}, false
	}
	hi, err := parseCoords(r.URL.Query().Get("hi"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad hi: %v", err)
		return nil, layout.Box{}, false
	}
	rank := len(ar.Meta.Dims)
	if len(lo) != rank || len(hi) != rank {
		httpError(w, http.StatusBadRequest, "tile rank %d/%d, array rank %d", len(lo), len(hi), rank)
		return nil, layout.Box{}, false
	}
	for d := range lo {
		if hi[d] < lo[d] {
			httpError(w, http.StatusBadRequest, "hi[%d]=%d below lo[%d]=%d", d, hi[d], d, lo[d])
			return nil, layout.Box{}, false
		}
	}
	box := layout.NewBox(lo, hi).Clip(ar.Meta.Dims)
	if box.Empty() {
		httpError(w, http.StatusBadRequest, "tile %v is empty after clipping to %v", layout.NewBox(lo, hi), ar.Meta.Dims)
		return nil, layout.Box{}, false
	}
	// The clipped size cannot overflow (array creation capped the dims
	// product), but it can still be an unreasonable single request.
	if lim := s.cfg.MaxTileElems; lim > 0 && box.Size() > lim {
		httpError(w, http.StatusRequestEntityTooLarge,
			"tile %v holds %d elements, over the per-request limit of %d", box, box.Size(), lim)
		return nil, layout.Box{}, false
	}
	return ar, box, true
}

func (s *Server) handleTileGet(w http.ResponseWriter, r *http.Request) {
	ar, box, ok := s.tileTarget(w, r)
	if !ok {
		return
	}
	compress := acceptsWireEncoding(r.Header.Get("Accept-Encoding"))
	lk := s.lockFor(ar.Meta.Name)
	// Requests negotiating different encodings must not join the same
	// flight — they need different bodies — so the encoding is part of
	// the flight key.
	key := tileFlightKey(lk, ar.Meta.Name, box)
	if compress {
		key += "|" + WireEncoding
	}
	payload, gen, coalesced, err := s.flights.do(key, func() ([]byte, uint64, error) {
		// Shared lock: concurrent GETs overlap freely; a PUT to this
		// array is excluded while the pinned tile's buffer is encoded.
		lk.mu.RLock()
		defer lk.mu.RUnlock()
		h, err := s.eng.Acquire(ar, box)
		if err != nil {
			return nil, 0, err
		}
		defer s.eng.Release(h, false)
		// The generation is read under the same lock hold as the bytes,
		// so a replica never reports a freshness its payload lacks.
		g := lk.overlapGen(box)
		if compress {
			return ooc.AppendFrame(nil, h.Tile().Data()), g, nil
		}
		return encodePayload(h.Tile().Data()), g, nil
	})
	if coalesced {
		s.met.coalesced.Inc()
	}
	if err != nil {
		s.engineError(w, err)
		return
	}
	s.meterWire(TenantOf(r), box.Size()*ooc.ElemSize, int64(len(payload)))
	w.Header().Set("Content-Type", "application/octet-stream")
	if compress {
		w.Header().Set("Content-Encoding", WireEncoding)
	}
	if r.Header.Get(TileWantGenHeader) != "" {
		w.Header().Set(TileGenHeader, strconv.FormatUint(gen, 10))
	}
	w.Header().Set("X-Tile-Elems", strconv.FormatInt(box.Size(), 10))
	w.Header().Set("X-Tile-Coalesced", strconv.FormatBool(coalesced))
	w.Write(payload)
}

func (s *Server) handleTilePut(w http.ResponseWriter, r *http.Request) {
	ar, box, ok := s.tileTarget(w, r)
	if !ok {
		return
	}
	var gen uint64
	genGated := false
	if v := r.Header.Get(TileGenHeader); v != "" {
		g, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad %s %q: %v", TileGenHeader, v, err)
			return
		}
		gen, genGated = g, true
	}
	want := box.Size() * ooc.ElemSize
	var body []byte
	var err error
	compress := false
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "":
		body, err = readBody(r, want)
	case WireEncoding:
		compress = true
		// A frame never exceeds raw-plus-header (AppendFrame's raw
		// fallback guarantees it), which bounds the read; the real size
		// check is the frame's own element count below.
		body, err = readBodyMax(r, want+frameMaxOverhead)
	default:
		httpError(w, http.StatusUnsupportedMediaType, "unsupported Content-Encoding %q (only %s)", enc, WireEncoding)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "tile payload: %v (want %d bytes for %v)", err, want, box)
		return
	}
	s.meterWire(TenantOf(r), want, int64(len(body)))
	// A compressed body is decoded into scratch BEFORE the tile is
	// acquired: DecodeFrame leaves its destination unspecified on error,
	// and a half-decoded frame must never land in a cached tile. It also
	// enforces that the frame's element count is exactly the tile's.
	var decoded []float64
	if compress {
		decoded = ooc.GetF64(int(box.Size()))
		defer ooc.PutF64(decoded)
		n, err := ooc.DecodeFrame(body, decoded)
		if err == nil && n != len(body) {
			err = fmt.Errorf("%d trailing bytes after the frame", len(body)-n)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "tile frame: %v (want %d elements for %v)", err, box.Size(), box)
			return
		}
	}
	// Exclusive lock: while this PUT decodes into the pinned tile's
	// buffer and releases it dirty, no GET of the same array holds a
	// pin — which both prevents torn reads of the shared slice and
	// upholds the engine's contract that a dirty release never races
	// overlapping pinned tiles (so overlap invalidation cannot skip a
	// reader-pinned stale entry).
	lk := s.lockFor(ar.Meta.Name)
	lk.mu.Lock()
	// Replicated writes are last-writer-wins by generation, per cell:
	// generations are comparable across box shapes (overlapping boxes
	// share a routing tile — see the boxGens comment), so any recorded
	// overlapping box with a strictly newer generation supersedes the
	// cells it covers, and the write applies only to the remainder.
	// That keeps the bytes a pure function of the writes seen, whatever
	// order a sub-box PUT, a full-tile PUT, a hint replay, and a
	// read-repair rewrite arrive in — gating on the exact box key alone
	// would let an older differently-shaped write roll back newer cells
	// while overlapGen still reported the newer generation, diverging
	// the replicas invisibly. Equal generations re-apply — a handoff
	// replay or retry of the same write is idempotent.
	var apply []layout.Box // nil: the whole box; non-nil: the merge remainder
	if genGated {
		if newer := lk.newerOverlaps(box, gen); len(newer) > 0 {
			if apply = subtractBoxes(box, newer); len(apply) == 0 {
				// Newer writes blanket every cell: skip, and report the
				// newest overlapping generation so the router catches
				// its counter up.
				stored := lk.overlapGen(box)
				lk.mu.Unlock()
				w.Header().Set(TileGenHeader, strconv.FormatUint(stored, 10))
				w.Header().Set(TileStaleHeader, "true")
				w.WriteHeader(http.StatusNoContent)
				return
			}
		}
	}
	h, err := s.eng.Acquire(ar, box)
	if err != nil {
		lk.mu.Unlock()
		s.engineError(w, err)
		return
	}
	switch {
	case apply == nil && compress:
		copy(h.Tile().Data(), decoded)
	case apply == nil:
		decodePayload(body, h.Tile().Data())
	default:
		// Partial apply: land only the un-superseded regions.
		scratch := decoded
		if !compress {
			scratch = ooc.GetF64(int(box.Size()))
			defer ooc.PutF64(scratch)
			decodePayload(body, scratch)
		}
		for _, region := range apply {
			copyBoxLocal(h.Tile().Data(), scratch, box, region)
		}
	}
	s.eng.Release(h, true)
	if genGated {
		lk.setGen(box.String(), box, gen)
	}
	lk.gen.Add(1) // version GET flights past this write before acknowledging
	lk.mu.Unlock()
	if s.cfg.DurablePuts {
		// Push this write to stable storage before the ack. The flush
		// happens outside the tile lock so concurrent PUTs to the same
		// array overlap here — and on a WAL-enabled disk the Sync is a
		// group commit, so they share one log fsync.
		if err := s.eng.FlushOverlapping(ar, box); err != nil {
			s.engineError(w, err)
			return
		}
		if err := ar.Sync(); err != nil {
			s.engineError(w, err)
			return
		}
	}
	if genGated {
		w.Header().Set(TileGenHeader, strconv.FormatUint(gen, 10))
	}
	w.Header().Set("X-Tile-Elems", strconv.FormatInt(box.Size(), 10))
	w.WriteHeader(http.StatusNoContent)
}

// engineError maps engine failures: a closed engine means we are
// shutting down (503), anything else is a real 500.
func (s *Server) engineError(w http.ResponseWriter, err error) {
	if err == ooc.ErrEngineClosed {
		w.Header().Set("Retry-After", retrySeconds(s.cfg.RetryAfter))
		httpError(w, http.StatusServiceUnavailable, "engine closed")
		return
	}
	s.met.errors.Inc()
	httpError(w, http.StatusInternalServerError, "%v", err)
}

// parseCoords parses "1,2,3" into coordinates.
func parseCoords(s string) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing coordinates")
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative coordinate %d", v)
		}
		out[i] = v
	}
	return out, nil
}

// tileFlightKey names the coalescing flight for (array, box). The
// write generation in the key keeps read-your-writes: a GET that
// starts after a PUT's 204 reads a bumped generation and so can only
// land on a flight whose leader acquired the tile after that write
// applied. Flights keyed by older generations may still be in the
// map, but no new-generation reader can join them.
func tileFlightKey(lk *tileLock, name string, box layout.Box) string {
	return fmt.Sprintf("%s|g%d|%s", name, lk.gen.Load(), box.String())
}

// checkedProduct multiplies positive extents, reporting overflow
// instead of wrapping (a created array's element count must stay a
// valid int64 before any limit comparison happens).
func checkedProduct(dims []int64) (int64, bool) {
	n := int64(1)
	for _, d := range dims {
		if d <= 0 || n > math.MaxInt64/d {
			return 0, false
		}
		n *= d
	}
	return n, true
}

// frameMaxOverhead bounds how much larger than the raw payload a codec
// frame can be: the 16-byte header plus word-padding slack (the raw
// fallback caps the payload itself at the logical size).
const frameMaxOverhead = 24

// readBodyMax reads a variable-length body of at most max bytes
// (compressed tile frames; the frame decoder validates the contents).
func readBodyMax(r *http.Request, max int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max))
	if err != nil {
		return nil, err
	}
	var extra [1]byte
	if m, _ := r.Body.Read(extra[:]); m > 0 {
		return nil, fmt.Errorf("body longer than the tile")
	}
	return body, nil
}

// readBody reads exactly want bytes of request body.
func readBody(r *http.Request, want int64) ([]byte, error) {
	body := make([]byte, want)
	n, err := io.ReadFull(r.Body, body)
	if err != nil {
		return nil, fmt.Errorf("short body: %d of %d bytes", n, want)
	}
	// A longer body than the box holds is a malformed request, not
	// silent truncation.
	var extra [1]byte
	if m, _ := r.Body.Read(extra[:]); m > 0 {
		return nil, fmt.Errorf("body longer than the tile")
	}
	return body, nil
}

// encodePayload renders elements as little-endian float64 bytes (the
// tile wire format, matching the file backend's on-disk encoding).
func encodePayload(data []float64) []byte {
	out := make([]byte, len(data)*ooc.ElemSize)
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[i*ooc.ElemSize:], math.Float64bits(v))
	}
	return out
}

// decodePayload fills data from the wire format; len(b) must be
// exactly len(data)*ElemSize (callers validate).
func decodePayload(b []byte, data []float64) {
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*ooc.ElemSize:]))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}
