package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/ooc"
)

// opsServer builds a served plane with the given shard count — the
// operator and conformance tests replay the same traffic against
// 1-shard and 4-shard planes.
func opsServer(t testing.TB, shards int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	d := ooc.NewDisk(0)
	eng := BuildEngine(d, shards, ooc.EngineOptions{Workers: 2, CacheTiles: 32})
	srv := New(d, eng, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	return srv, hs
}

func opsCreate(t testing.TB, base, name string, dims []int64, layoutName string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"name": name, "dims": dims, "layout": layoutName})
	resp, err := http.Post(base+"/v1/arrays", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d", name, resp.StatusCode)
	}
}

func boxQuery(box layout.Box) string {
	return fmt.Sprintf("lo=%s&hi=%s", coordList(box.Lo), coordList(box.Hi))
}

// opsPutTile writes one tile over HTTP, optionally generation-gated.
func opsPutTile(t testing.TB, base, name string, box layout.Box, data []float64, gen uint64) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/arrays/%s/tile?%s", base, name, boxQuery(box))
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(encodePayload(data)))
	if gen > 0 {
		req.Header.Set(TileGenHeader, fmt.Sprint(gen))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put %s %v: status %d", name, box, resp.StatusCode)
	}
}

// opsGetTile reads one tile over HTTP, returning payload bytes and the
// reported write generation.
func opsGetTile(t testing.TB, base, name string, box layout.Box) ([]byte, uint64) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/arrays/%s/tile?%s", base, name, boxQuery(box))
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(TileWantGenHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s %v: status %d %s", name, box, resp.StatusCode, body)
	}
	var gen uint64
	fmt.Sscan(resp.Header.Get(TileGenHeader), &gen)
	return body, gen
}

func randBox(rng *rand.Rand, dims []int64, maxEdge int64) layout.Box {
	lo := make([]int64, len(dims))
	hi := make([]int64, len(dims))
	for d := range dims {
		edge := 1 + rng.Int63n(maxEdge)
		if edge > dims[d] {
			edge = dims[d]
		}
		lo[d] = rng.Int63n(dims[d] - edge + 1)
		hi[d] = lo[d] + edge
	}
	return layout.NewBox(lo, hi)
}

func randData(rng *rand.Rand, n int64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 100
	}
	return out
}

// TestBatchSemantics checks the per-op contract: statuses, payload
// round-trips, and explicit partial failure.
func TestBatchSemantics(t *testing.T) {
	_, hs := opsServer(t, 1, Config{})
	opsCreate(t, hs.URL, "A", []int64{16, 16}, "row")

	put := func(box layout.Box, data []float64) batchOp {
		return batchOp{Op: "put", Lo: box.Lo, Hi: box.Hi,
			Data: base64.StdEncoding.EncodeToString(encodePayload(data))}
	}
	b1 := layout.NewBox([]int64{0, 0}, []int64{4, 4})
	b2 := layout.NewBox([]int64{4, 4}, []int64{8, 12})
	d1 := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	d2 := make([]float64, b2.Size())
	for i := range d2 {
		d2[i] = -float64(i)
	}

	body, _ := json.Marshal(batchRequest{Ops: []batchOp{
		put(b1, d1),
		put(b2, d2),
		{Op: "get", Lo: b1.Lo, Hi: b1.Hi},
		{Op: "get", Lo: []int64{0}, Hi: []int64{4}},           // wrong rank
		{Op: "frobnicate", Lo: b1.Lo, Hi: b1.Hi},              // unknown op
		{Op: "get", Lo: []int64{12, 12}, Hi: []int64{12, 16}}, // empty box
	}})
	resp, err := http.Post(hs.URL+"/v1/arrays/A/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 6 {
		t.Fatalf("batch returned %d results, want 6", len(out.Results))
	}
	wantStatus := []int{204, 204, 200, 400, 400, 400}
	for i, want := range wantStatus {
		if out.Results[i].Status != want {
			t.Errorf("op %d: status %d, want %d (%s)", i, out.Results[i].Status, want, out.Results[i].Error)
		}
	}
	if out.Failed != 3 {
		t.Errorf("failed = %d, want 3", out.Failed)
	}
	got, _ := base64.StdEncoding.DecodeString(out.Results[2].Data)
	if !bytes.Equal(got, encodePayload(d1)) {
		t.Error("batch get did not round-trip the batch put")
	}
	// The batch is observably identical to single-tile ops: a plain
	// tile GET sees the batch's writes.
	if payload, _ := opsGetTile(t, hs.URL, "A", b2); !bytes.Equal(payload, encodePayload(d2)) {
		t.Error("tile GET does not see the batch PUT")
	}

	// Malformed body and empty op list are request-level 400s.
	for _, bad := range []string{`{"ops": []}`, `{"ops": [`, `nonsense`} {
		resp, err := http.Post(hs.URL+"/v1/arrays/A/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// scanAll runs one scan request and decodes every frame.
func scanAll(t testing.TB, base, name, query string, compress bool) ([]*ScanChunk, uint64) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/arrays/%s/scan?%s", base, name, query), nil)
	if compress {
		req.Header.Set("Accept-Encoding", WireEncoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scan %s?%s: status %d %s", name, query, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ScanContentType {
		t.Fatalf("scan content type %q", ct)
	}
	sr := NewScanReader(resp.Body)
	var chunks []*ScanChunk
	for {
		ch, err := sr.Next()
		if err == io.EOF {
			return chunks, sr.Total()
		}
		if err != nil {
			t.Fatalf("scan frame %d: %v", len(chunks), err)
		}
		chunks = append(chunks, ch)
	}
}

// TestScanStream: the stream covers the box exactly in plan order, and
// every chunk is byte-identical to a tile GET of the chunk's box —
// raw and compressed alike.
func TestScanStream(t *testing.T) {
	for _, layoutName := range []string{"row", "col"} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s-compress=%v", layoutName, compress), func(t *testing.T) {
				_, hs := opsServer(t, 1, Config{})
				name := "S"
				dims := []int64{40, 24}
				opsCreate(t, hs.URL, name, dims, layoutName)
				rng := rand.New(rand.NewSource(7))
				full := layout.NewBox([]int64{0, 0}, []int64{40, 24})
				opsPutTile(t, hs.URL, name, full, randData(rng, full.Size()), 0)

				box := layout.NewBox([]int64{3, 2}, []int64{37, 22})
				chunks, total := scanAll(t, hs.URL, name, boxQuery(box)+"&chunk=100", compress)
				if uint64(len(chunks)) != total {
					t.Fatalf("%d chunks delivered, trailer says %d", len(chunks), total)
				}
				var l *layout.Layout
				if layoutName == "col" {
					l = layout.ColMajor(dims...)
				} else {
					l = layout.RowMajor(dims...)
				}
				plan := layout.PlanScan(l, box, 100)
				if len(plan) != len(chunks) {
					t.Fatalf("%d chunks, plan has %d", len(chunks), len(plan))
				}
				for i, ch := range chunks {
					if ch.Seq != uint64(i) {
						t.Fatalf("chunk %d has seq %d", i, ch.Seq)
					}
					if ch.Box.String() != plan[i].String() {
						t.Fatalf("chunk %d box %v, plan %v", i, ch.Box, plan[i])
					}
					ref, _ := opsGetTile(t, hs.URL, name, ch.Box)
					if !bytes.Equal(encodePayload(ch.Data), ref) {
						t.Fatalf("chunk %d differs from tile GET of %v", i, ch.Box)
					}
					if ch.Cursor == "" {
						t.Fatalf("chunk %d carries no cursor", i)
					}
				}
			})
		}
	}
}

// TestScanResume: a scan resumed from chunk k's cursor delivers
// exactly chunks k+1.. — no skips, no double delivery.
func TestScanResume(t *testing.T) {
	_, hs := opsServer(t, 1, Config{})
	opsCreate(t, hs.URL, "R", []int64{32, 32}, "row")
	rng := rand.New(rand.NewSource(11))
	full := layout.NewBox([]int64{0, 0}, []int64{32, 32})
	opsPutTile(t, hs.URL, "R", full, randData(rng, full.Size()), 0)

	all, _ := scanAll(t, hs.URL, "R", boxQuery(full)+"&chunk=128", false)
	if len(all) < 4 {
		t.Fatalf("want several chunks, got %d", len(all))
	}
	for _, k := range []int{0, len(all) / 2, len(all) - 1} {
		resumed, total := scanAll(t, hs.URL, "R", "cursor="+all[k].Cursor, false)
		if int(total) != len(all) {
			t.Fatalf("resume at %d: trailer total %d, want %d", k, total, len(all))
		}
		if len(resumed) != len(all)-k-1 {
			t.Fatalf("resume at %d: %d chunks, want %d", k, len(resumed), len(all)-k-1)
		}
		for i, ch := range resumed {
			want := all[k+1+i]
			if ch.Seq != want.Seq || ch.Box.String() != want.Box.String() {
				t.Fatalf("resume at %d: chunk %d is seq %d %v, want seq %d %v",
					k, i, ch.Seq, ch.Box, want.Seq, want.Box)
			}
			if !bytes.Equal(encodePayload(ch.Data), encodePayload(want.Data)) {
				t.Fatalf("resume at %d: chunk seq %d data differs", k, ch.Seq)
			}
		}
	}
	// The last chunk's cursor resumes to an empty tail: just a trailer.
	tail, _ := scanAll(t, hs.URL, "R", "cursor="+all[len(all)-1].Cursor, false)
	if len(tail) != 0 {
		t.Fatalf("resume past the end delivered %d chunks", len(tail))
	}
}

// TestScanCursorRejection: malformed or mismatched cursors 400 (404
// for an unknown array), never 5xx.
func TestScanCursorRejection(t *testing.T) {
	_, hs := opsServer(t, 1, Config{})
	opsCreate(t, hs.URL, "C", []int64{16, 16}, "row")
	box := layout.NewBox([]int64{0, 0}, []int64{16, 16})

	get := func(q string) int {
		resp, err := http.Get(hs.URL + "/v1/arrays/C/scan?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		cursor string
		want   int
	}{
		{"garbage!!!", 400},
		{base64.RawURLEncoding.EncodeToString([]byte("not-a-cursor")), 400},
		{EncodeScanCursor("C", box, 64, "col-major", 0), 400}, // wrong layout
		{EncodeScanCursor("gone", box, 64, "row-major", 0), 404},
		{EncodeScanCursor("C", box, 64, "row-major", 9999), 400}, // seq past plan
		{EncodeScanCursor("C", layout.NewBox([]int64{0, 0}, []int64{99, 99}), 64, "row-major", 0), 400},
	}
	for _, tc := range cases {
		if got := get("cursor=" + tc.cursor); got != tc.want {
			t.Errorf("cursor %.24q...: status %d, want %d", tc.cursor, got, tc.want)
		}
	}
	// A tampered token must fail the checksum.
	tok := EncodeScanCursor("C", box, 64, "row-major", 1)
	raw, _ := base64.RawURLEncoding.DecodeString(tok)
	raw[3] ^= 0x40
	if got := get("cursor=" + base64.RawURLEncoding.EncodeToString(raw)); got != 400 {
		t.Errorf("tampered cursor: status %d, want 400", got)
	}
}

// TestReduceMatchesClientFold: reduce ≡ the client-side fold over a
// plain GET, bit-for-bit (the Bits field carries exactness through
// JSON).
func TestReduceMatchesClientFold(t *testing.T) {
	_, hs := opsServer(t, 1, Config{})
	opsCreate(t, hs.URL, "D", []int64{48, 32}, "row")
	rng := rand.New(rand.NewSource(3))
	full := layout.NewBox([]int64{0, 0}, []int64{48, 32})
	opsPutTile(t, hs.URL, "D", full, randData(rng, full.Size()), 0)

	box := layout.NewBox([]int64{5, 3}, []int64{43, 29})
	payload, _ := opsGetTile(t, hs.URL, "D", box)
	ref := make([]float64, box.Size())
	decodePayload(payload, ref)

	fold := map[string]func() float64{
		"sum": func() float64 {
			var s float64
			for _, v := range ref {
				s += v
			}
			return s
		},
		"min": func() float64 {
			m := math.Inf(1)
			for _, v := range ref {
				if v < m {
					m = v
				}
			}
			return m
		},
		"max": func() float64 {
			m := math.Inf(-1)
			for _, v := range ref {
				if v > m {
					m = v
				}
			}
			return m
		},
		"count": func() float64 { return float64(box.Size()) },
	}
	for op, f := range fold {
		body, _ := json.Marshal(reduceRequest{Op: op, Lo: box.Lo, Hi: box.Hi})
		resp, err := http.Post(hs.URL+"/v1/arrays/D/reduce", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out reduceResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reduce %s: status %d", op, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Count != box.Size() {
			t.Errorf("reduce %s: count %d, want %d", op, out.Count, box.Size())
		}
		if want := math.Float64bits(f()); out.Bits != want {
			t.Errorf("reduce %s: bits %x, want %x (value %v)", op, out.Bits, want, f())
		}
	}
	// Unknown op and bad boxes 400.
	for _, bad := range []string{
		`{"op":"mean","lo":[0,0],"hi":[4,4]}`,
		`{"op":"sum","lo":[0],"hi":[4,4]}`,
		`{"op":"sum","lo":[4,4],"hi":[0,0]}`,
		`nope`,
	} {
		resp, err := http.Post(hs.URL+"/v1/arrays/D/reduce", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("reduce %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestOperatorConformance is the differential suite's single-node
// half: across seeds and {1-shard, 4-shard} planes, batch GET/PUT must
// be observably identical to the same boxes issued as sequential
// single-tile ops (byte-equal contents AND equal reported write
// generations), scans must equal concatenated tile GETs in plan order,
// and reduce must equal the client-side fold. The reference plane
// replays the same seeded op sequence one tile at a time.
func TestOperatorConformance(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	dims := []int64{48, 48}
	for seed := 0; seed < seeds; seed++ {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d-shards%d", seed, shards), func(t *testing.T) {
				t.Parallel()
				_, subject := opsServer(t, shards, Config{})
				_, ref := opsServer(t, shards, Config{})
				layoutName := "row"
				if seed%2 == 1 {
					layoutName = "col"
				}
				opsCreate(t, subject.URL, "A", dims, layoutName)
				opsCreate(t, ref.URL, "A", dims, layoutName)

				rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
				var written []layout.Box
				gen := uint64(0)
				// Write phase: batches of generation-gated puts against the
				// subject; the identical writes land one tile at a time on
				// the reference.
				for round := 0; round < 6; round++ {
					n := 1 + rng.Intn(5)
					ops := make([]batchOp, 0, n)
					type w struct {
						box  layout.Box
						data []float64
						gen  uint64
					}
					var ws []w
					for i := 0; i < n; i++ {
						box := randBox(rng, dims, 16)
						data := randData(rng, box.Size())
						gen++
						ops = append(ops, batchOp{Op: "put", Lo: box.Lo, Hi: box.Hi,
							Data: base64.StdEncoding.EncodeToString(encodePayload(data)), Gen: gen})
						ws = append(ws, w{box, data, gen})
						written = append(written, box)
					}
					body, _ := json.Marshal(batchRequest{Ops: ops})
					resp, err := http.Post(subject.URL+"/v1/arrays/A/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Fatal(err)
					}
					var out batchResponse
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					for i, res := range out.Results {
						if res.Status != http.StatusNoContent {
							t.Fatalf("round %d op %d: status %d (%s)", round, i, res.Status, res.Error)
						}
					}
					for _, w := range ws {
						opsPutTile(t, ref.URL, "A", w.box, w.data, w.gen)
					}
				}

				// Whole-array contents and per-box generations agree.
				full := layout.NewBox([]int64{0, 0}, dims)
				subjectBytes, _ := opsGetTile(t, subject.URL, "A", full)
				refBytes, _ := opsGetTile(t, ref.URL, "A", full)
				if !bytes.Equal(subjectBytes, refBytes) {
					t.Fatal("batch writes diverged from sequential single-tile writes")
				}
				for _, box := range written {
					_, sg := opsGetTile(t, subject.URL, "A", box)
					_, rg := opsGetTile(t, ref.URL, "A", box)
					if sg != rg {
						t.Fatalf("box %v: subject gen %d, reference gen %d", box, sg, rg)
					}
				}

				// Batch GET ≡ individual GETs of the same boxes.
				gets := make([]batchOp, 0, 4)
				for i := 0; i < 4; i++ {
					b := randBox(rng, dims, 20)
					gets = append(gets, batchOp{Op: "get", Lo: b.Lo, Hi: b.Hi})
				}
				body, _ := json.Marshal(batchRequest{Ops: gets})
				resp, err := http.Post(subject.URL+"/v1/arrays/A/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				var out batchResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				for i, res := range out.Results {
					b := layout.NewBox(gets[i].Lo, gets[i].Hi)
					refPayload, refGen := opsGetTile(t, ref.URL, "A", b)
					got, _ := base64.StdEncoding.DecodeString(res.Data)
					if !bytes.Equal(got, refPayload) {
						t.Fatalf("batch get %v differs from single-tile GET", b)
					}
					if res.Gen != refGen {
						t.Fatalf("batch get %v: gen %d, single-tile gen %d", b, res.Gen, refGen)
					}
				}

				// Scan ≡ concatenated tile GETs in plan order, resumable at
				// any chunk.
				scanBox := randBox(rng, dims, 48)
				chunkElems := int64(1 + rng.Intn(500))
				chunks, _ := scanAll(t, subject.URL, "A", boxQuery(scanBox)+fmt.Sprintf("&chunk=%d", chunkElems), rng.Intn(2) == 0)
				var l *layout.Layout
				if layoutName == "col" {
					l = layout.ColMajor(dims...)
				} else {
					l = layout.RowMajor(dims...)
				}
				plan := layout.PlanScan(l, scanBox, chunkElems)
				if len(chunks) != len(plan) {
					t.Fatalf("scan delivered %d chunks, plan has %d", len(chunks), len(plan))
				}
				for i, ch := range chunks {
					if ch.Box.String() != plan[i].String() {
						t.Fatalf("chunk %d box %v, plan %v", i, ch.Box, plan[i])
					}
					refPayload, _ := opsGetTile(t, ref.URL, "A", ch.Box)
					if !bytes.Equal(encodePayload(ch.Data), refPayload) {
						t.Fatalf("scan chunk %d differs from tile GET of %v", i, ch.Box)
					}
				}
				if len(chunks) > 1 {
					k := rng.Intn(len(chunks) - 1)
					resumed, _ := scanAll(t, subject.URL, "A", "cursor="+chunks[k].Cursor, false)
					if len(resumed) != len(chunks)-k-1 {
						t.Fatalf("resume at %d delivered %d chunks, want %d", k, len(resumed), len(chunks)-k-1)
					}
					for i, ch := range resumed {
						if ch.Seq != chunks[k+1+i].Seq {
							t.Fatalf("resume skipped or repeated: got seq %d, want %d", ch.Seq, chunks[k+1+i].Seq)
						}
					}
				}

				// Reduce ≡ client-side fold over a single-tile GET.
				redBox := randBox(rng, dims, 32)
				refPayload, _ := opsGetTile(t, ref.URL, "A", redBox)
				refData := make([]float64, redBox.Size())
				decodePayload(refPayload, refData)
				var sum float64
				minV, maxV := math.Inf(1), math.Inf(-1)
				for _, v := range refData {
					sum += v
					if v < minV {
						minV = v
					}
					if v > maxV {
						maxV = v
					}
				}
				want := map[string]float64{"sum": sum, "min": minV, "max": maxV, "count": float64(redBox.Size())}
				for op, wv := range want {
					rb, _ := json.Marshal(reduceRequest{Op: op, Lo: redBox.Lo, Hi: redBox.Hi})
					resp, err := http.Post(subject.URL+"/v1/arrays/A/reduce", "application/json", bytes.NewReader(rb))
					if err != nil {
						t.Fatal(err)
					}
					var rr reduceResponse
					if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					if rr.Bits != math.Float64bits(wv) {
						t.Fatalf("reduce %s over %v: bits %x, want %x", op, redBox, rr.Bits, math.Float64bits(wv))
					}
				}
			})
		}
	}
}

// newFuzzServer builds a minimal served plane for the fuzz targets
// (they cannot use the *testing.T helpers).
func newFuzzServer(f *testing.F) (*Server, *httptest.Server) {
	d := ooc.NewDisk(0)
	if _, err := d.CreateArray(ir.NewArray("F", 32, 32), layout.RowMajor(32, 32)); err != nil {
		f.Fatal(err)
	}
	eng := ooc.NewEngine(d, ooc.EngineOptions{Workers: 2, CacheTiles: 8})
	srv := New(d, eng, Config{})
	hs := httptest.NewServer(srv.Handler())
	f.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	return srv, hs
}

// FuzzScanCursor: arbitrary cursor tokens must parse-or-400 — never
// panic, never 5xx, never start a scan with an inconsistent plan.
func FuzzScanCursor(f *testing.F) {
	_, hs := newFuzzServer(f)
	box := layout.NewBox([]int64{0, 0}, []int64{32, 32})
	f.Add(EncodeScanCursor("F", box, 64, "row-major", 0))
	f.Add(EncodeScanCursor("F", box, 64, "row-major", 3))
	f.Add(EncodeScanCursor("gone", box, 64, "row-major", 0))
	f.Add(EncodeScanCursor("F", box, 64, "col-major", 1))
	f.Add("")
	f.Add("AAAA")
	f.Add("not base64 at all!!")
	f.Add(base64.RawURLEncoding.EncodeToString([]byte("ooc-scan/1|F|0,0|32,32|64|row-major|0|deadbeef")))
	f.Fuzz(func(t *testing.T, token string) {
		// The parser must never panic, and a token it rejects must be
		// rejected deterministically.
		if _, err := ParseScanCursor(token); err != nil {
			if _, err2 := ParseScanCursor(token); err2 == nil {
				t.Fatal("ParseScanCursor flip-flopped on the same token")
			}
		}
		resp, err := http.Get(hs.URL + "/v1/arrays/F/scan?cursor=" + url.QueryEscape(token))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("cursor %q: status %d", token, resp.StatusCode)
		}
	})
}

// FuzzBatchRequest: arbitrary batch bodies must answer 2xx/4xx — never
// panic, never 5xx, and never corrupt an array a valid op didn't
// target (array G stays untouched whatever happens to F).
func FuzzBatchRequest(f *testing.F) {
	srv, hs := newFuzzServer(f)
	if _, err := srv.disk.CreateArray(ir.NewArray("G", 8, 8), layout.RowMajor(8, 8)); err != nil {
		f.Fatal(err)
	}
	sentinel := layout.NewBox([]int64{0, 0}, []int64{8, 8})
	data := make([]float64, sentinel.Size())
	for i := range data {
		data[i] = float64(i) * 1.5
	}
	req, _ := http.NewRequest(http.MethodPut,
		hs.URL+"/v1/arrays/G/tile?"+boxQuery(sentinel), bytes.NewReader(encodePayload(data)))
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 204 {
		f.Fatalf("seed sentinel write failed: %v", err)
	} else {
		resp.Body.Close()
	}

	ok, _ := json.Marshal(batchRequest{Ops: []batchOp{
		{Op: "put", Lo: []int64{0, 0}, Hi: []int64{4, 4},
			Data: base64.StdEncoding.EncodeToString(make([]byte, 16*8))},
		{Op: "get", Lo: []int64{0, 0}, Hi: []int64{4, 4}},
	}})
	f.Add(ok)
	f.Add([]byte(`{"ops":[{"op":"get","lo":[0,0],"hi":[999999,999999]}]}`))
	f.Add([]byte(`{"ops":[{"op":"put","lo":[0,0],"hi":[4,4],"data_b64":"!!!"}]}`))
	f.Add([]byte(`{"ops":[{"op":"get","lo":[-1,-1],"hi":[4,4]}]}`))
	f.Add([]byte(`{"ops":[{"op":"get","lo":[0],"hi":[4]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"ops":[{"op":"get","lo":[0,0,0,0,0,0,0,0],"hi":[1,1,1,1,1,1,1,1]}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(hs.URL+"/v1/arrays/F/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("batch body %.60q: status %d", body, resp.StatusCode)
		}
		// The untargeted array's tile survives bit-for-bit.
		greq, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/arrays/G/tile?"+boxQuery(sentinel), nil)
		gresp, err := http.DefaultClient.Do(greq)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(gresp.Body)
		gresp.Body.Close()
		if gresp.StatusCode != 200 || !bytes.Equal(got, encodePayload(data)) {
			t.Fatal("a batch against F disturbed array G")
		}
	})
}

// TestBatchEngineErrorMapping pins the per-op status an engine
// failure maps to: a closed engine is a retryable 503, anything else
// is a described 500.
func TestBatchEngineErrorMapping(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	if r := ts.srv.batchEngineError(ooc.ErrEngineClosed); r.Status != http.StatusServiceUnavailable {
		t.Errorf("closed engine: %d, want 503", r.Status)
	}
	if r := ts.srv.batchEngineError(errors.New("stripe torn")); r.Status != http.StatusInternalServerError || r.Error != "stripe torn" {
		t.Errorf("generic failure: %+v, want a described 500", r)
	}
}
