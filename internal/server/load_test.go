package server

import (
	"testing"
	"time"

	"outcore/internal/ooc"
)

func TestLoadSpecTiles(t *testing.T) {
	spec := LoadSpec{Dims: []int64{10, 10}, TileEdge: 4}
	tiles := spec.tiles()
	if len(tiles) != 9 {
		t.Fatalf("10x10 grid at edge 4: %d tiles, want 9", len(tiles))
	}
	// Edge tiles clip to the array bound.
	last := tiles[len(tiles)-1]
	if last.Hi[0] != 10 || last.Hi[1] != 10 || last.Lo[0] != 8 || last.Lo[1] != 8 {
		t.Errorf("last tile = %v", last)
	}
	var total int64
	for _, b := range tiles {
		total += b.Size()
	}
	if total != 100 {
		t.Errorf("tiles cover %d elements, want 100", total)
	}
}

func TestPercentile(t *testing.T) {
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	lat := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if p := percentile(lat, 0.5); p != 2 {
		t.Errorf("p50 = %v, want 2", p)
	}
	if p := percentile(lat, 0.99); p != 4 {
		t.Errorf("p99 = %v, want 4", p)
	}
}

// TestRunLoadAgainstServer drives the full harness loop against an
// in-process server: every request lands, the zipf skew produces cache
// hits, and the scorecard fields are coherent.
func TestRunLoadAgainstServer(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 32, 32)
	res, err := RunLoad(LoadSpec{
		BaseURL:  ts.http.URL,
		Array:    "A",
		Dims:     []int64{32, 32},
		TileEdge: 8,
		Clients:  4,
		Requests: 200,
		ZipfS:    1.2,
		ReadFrac: 0.8,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 200 || res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("ok=%d rejected=%d errors=%d, want 200/0/0", res.OK, res.Rejected, res.Errors)
	}
	if res.Throughput <= 0 {
		t.Error("throughput not positive")
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("latency percentiles incoherent: p50=%v p99=%v", res.P50, res.P99)
	}
	// 200 zipf-skewed requests over a 16-tile grid must reuse tiles.
	if res.Hits == 0 || res.HitRate <= 0 {
		t.Errorf("no cache hits under zipf reuse: %+v", res)
	}
	if res.Hits+res.Misses == 0 {
		t.Error("engine saw no traffic")
	}
}

// TestRunLoadScanScenario drives the scan-heavy operator scenario in
// open-loop mode: scans must move the stripe's tiles in single
// requests, so the point-GET round-trip equivalent has to come out
// well above the requests actually issued — the ratio the serve-scan
// bench rows gate on.
func TestRunLoadScanScenario(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 64, 64)
	res, err := RunLoad(LoadSpec{
		BaseURL:      ts.http.URL,
		Array:        "A",
		Dims:         []int64{64, 64},
		TileEdge:     8,
		Clients:      4,
		Requests:     120,
		ReadFrac:     1,
		Seed:         7,
		Scenario:     "scan-heavy",
		OpenLoopRate: 100000, // effectively unthrottled; exercises the schedule path
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 120 || res.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want 120/0", res.OK, res.Errors)
	}
	if res.ScanRequests == 0 || res.ScanChunks == 0 {
		t.Fatalf("scan scenario issued no scans: %+v", res)
	}
	if res.RoundTrips != 120 {
		t.Errorf("round trips %d, want 120", res.RoundTrips)
	}
	// 80% scans, each spanning 8 tiles of the 64-wide stripe: the
	// point-GET equivalent must clear the 5x gate with margin.
	if res.PointRoundTrips < 5*res.RoundTrips {
		t.Errorf("point equivalent %d < 5x round trips %d — scans are not batching the stripe",
			res.PointRoundTrips, res.RoundTrips)
	}
}

// TestRunLoadBatchScenario drives the write-heavy batch scenario.
func TestRunLoadBatchScenario(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 64, 64)
	res, err := RunLoad(LoadSpec{
		BaseURL:  ts.http.URL,
		Array:    "A",
		Dims:     []int64{64, 64},
		TileEdge: 8,
		Clients:  4,
		Requests: 120,
		ReadFrac: 0.5,
		Seed:     7,
		Scenario: "write-heavy",
		BatchOps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 120 || res.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want 120/0", res.OK, res.Errors)
	}
	if res.BatchRequests == 0 || res.BatchOpsMoved < 8*res.BatchRequests {
		t.Fatalf("batch scenario incoherent: %+v", res)
	}
	if res.PointRoundTrips < 5*res.RoundTrips {
		t.Errorf("point equivalent %d < 5x round trips %d", res.PointRoundTrips, res.RoundTrips)
	}
}

// TestRunLoadMixedScenario drives the three-way mix: scans, batches
// and point ops must all appear, and the tally must cover every
// request.
func TestRunLoadMixedScenario(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 64, 64)
	res, err := RunLoad(LoadSpec{
		BaseURL:  ts.http.URL,
		Array:    "A",
		Dims:     []int64{64, 64},
		TileEdge: 8,
		Clients:  4,
		Requests: 150,
		ReadFrac: 0.7,
		Seed:     11,
		Scenario: "mixed",
		BatchOps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 150 || res.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want 150/0", res.OK, res.Errors)
	}
	if res.ScanRequests == 0 || res.BatchRequests == 0 {
		t.Fatalf("mixed scenario missing an op kind: %+v", res)
	}
	points := res.RoundTrips - res.ScanRequests - res.BatchRequests
	if points <= 0 {
		t.Errorf("mixed scenario issued no point ops: %+v", res)
	}
}

func TestRateLimiterEvictionBound(t *testing.T) {
	l := newRateLimiter(1, 1, func() time.Time { return time.Unix(0, 0) })
	l.maxClients = 8
	for i := 0; i < 100; i++ {
		l.allow(string(rune('a' + i)))
	}
	if len(l.buckets) > 8 {
		t.Errorf("limiter kept %d buckets, bound is 8", len(l.buckets))
	}
	if l.lru.Len() != len(l.buckets) {
		t.Errorf("lru length %d != buckets %d", l.lru.Len(), len(l.buckets))
	}
}

// TestRunLoadCompressed runs the harness with wire compression against
// a compression-enabled server: every request still lands, and the
// scorecard's wire delta shows fewer bytes crossed than moved.
func TestRunLoadCompressed(t *testing.T) {
	ts := newTestServer(t, Config{}, func(d *ooc.Disk) { d.EnableCompression() })
	ts.createArray(t, "A", 32, 32)
	res, err := RunLoad(LoadSpec{
		BaseURL:  ts.http.URL,
		Array:    "A",
		Dims:     []int64{32, 32},
		TileEdge: 8,
		Clients:  2,
		Requests: 100,
		ReadFrac: 0.5,
		Seed:     7,
		Compress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 100 {
		t.Fatalf("ok = %d of 100 (rejected %d, errors %d)", res.OK, res.Rejected, res.Errors)
	}
	if res.WireRawBytes <= 0 || res.WireBytes <= 0 {
		t.Fatalf("wire deltas raw=%d enc=%d, want positive", res.WireRawBytes, res.WireBytes)
	}
	if res.WireBytes*2 > res.WireRawBytes {
		t.Errorf("wire bytes %d vs raw %d: smooth tiles should beat 2x", res.WireBytes, res.WireRawBytes)
	}
}
