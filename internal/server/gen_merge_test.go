package server

import (
	"bytes"
	"math/rand"
	"net/http"
	"strconv"
	"testing"

	"outcore/internal/layout"
)

// putGen issues a generation-carrying tile PUT of a constant value and
// returns the response's recorded generation and stale flag.
func putGen(t *testing.T, ts *testServer, query string, gen uint64, elems int, val float64) (uint64, bool) {
	t.Helper()
	payload := make([]float64, elems)
	for i := range payload {
		payload[i] = val
	}
	req, err := http.NewRequest(http.MethodPut, ts.url("/v1/arrays/A/tile?%s", query), bytes.NewReader(encodePayload(payload)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TileGenHeader, strconv.FormatUint(gen, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT %s gen %d: status %d", query, gen, resp.StatusCode)
	}
	stored, _ := strconv.ParseUint(resp.Header.Get(TileGenHeader), 10, 64)
	return stored, resp.Header.Get(TileStaleHeader) != ""
}

// getGen reads a tile with generation reporting on.
func getGen(t *testing.T, ts *testServer, query string, elems int) ([]float64, uint64) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.url("/v1/arrays/A/tile?%s", query), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TileWantGenHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", query, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, elems)
	decodePayload(buf.Bytes(), data)
	gen, _ := strconv.ParseUint(resp.Header.Get(TileGenHeader), 10, 64)
	return data, gen
}

// TestGenGateStaleAcrossBoxShapes pins the cross-shape stale gate: a
// newer write of the full tile must not be rolled back by an older
// sub-box write arriving late — even though the two writes carry
// different box keys. The old behaviour compared generations only for
// the exact box key, so the late gen-5 write started from a recorded
// generation of 0, overwrote gen-6 bytes, and reads still reported
// gen 6 for them.
func TestGenGateStaleAcrossBoxShapes(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	ts.createArray(t, "A", 16, 16)

	if _, stale := putGen(t, ts, "lo=0,0&hi=8,8", 6, 8*8, 6); stale {
		t.Fatal("first write reported stale")
	}
	stored, stale := putGen(t, ts, "lo=0,0&hi=4,8", 5, 4*8, 5)
	if !stale {
		t.Fatal("older sub-box write was not reported stale")
	}
	if stored != 6 {
		t.Fatalf("stale response reported generation %d, want 6", stored)
	}
	data, gen := getGen(t, ts, "lo=0,0&hi=8,8", 8*8)
	if gen != 6 {
		t.Fatalf("read generation %d, want 6", gen)
	}
	for i, v := range data {
		if v != 6 {
			t.Fatalf("element %d is %v: the stale gen-5 write rolled back gen-6 data", i, v)
		}
	}
}

// TestGenGateConvergesAnyArrivalOrder replays the same two
// partially-overlapping writes in both orders on two independent
// servers and requires identical bytes and identical reported
// generations — the property read-repair depends on: replicas that saw
// the same writes must agree, or divergence hides behind equal
// generations forever. The newer write covers only part of the older
// one, so the late-arriving older write must merge (land on the cells
// the newer one didn't touch) rather than be dropped or applied whole.
func TestGenGateConvergesAnyArrivalOrder(t *testing.T) {
	type write struct {
		query string
		box   layout.Box
		gen   uint64
		val   float64
	}
	w1 := write{"lo=0,0&hi=4,4", layout.NewBox([]int64{0, 0}, []int64{4, 4}), 2, 2}
	w2 := write{"lo=2,2&hi=6,6", layout.NewBox([]int64{2, 2}, []int64{6, 6}), 1, 1}

	run := func(order ...write) ([]float64, uint64) {
		ts := newTestServer(t, Config{}, nil)
		ts.createArray(t, "A", 16, 16)
		for _, w := range order {
			putGen(t, ts, w.query, w.gen, int(w.box.Size()), w.val)
		}
		return getGen(t, ts, "lo=0,0&hi=6,6", 6*6)
	}
	a, genA := run(w1, w2)
	b, genB := run(w2, w1)
	if genA != genB {
		t.Fatalf("orders report different generations: %d vs %d", genA, genB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d diverges by arrival order: %v vs %v", i, a[i], b[i])
		}
	}
	// And both match the generation order: w1 (gen 2) wins everywhere it
	// wrote, w2 (gen 1) only outside w1.
	for r := int64(0); r < 6; r++ {
		for c := int64(0); c < 6; c++ {
			want := 0.0
			switch {
			case w1.box.Contains([]int64{r, c}):
				want = w1.val
			case w2.box.Contains([]int64{r, c}):
				want = w2.val
			}
			if got := a[r*6+c]; got != want {
				t.Fatalf("cell (%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
}

// TestSubtractBoxes brute-forces the guillotine split against per-cell
// membership on random small boxes.
func TestSubtractBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBox := func() layout.Box {
		lo := []int64{rng.Int63n(6), rng.Int63n(6)}
		return layout.NewBox(lo, []int64{lo[0] + 1 + rng.Int63n(5), lo[1] + 1 + rng.Int63n(5)})
	}
	for trial := 0; trial < 200; trial++ {
		box := randBox()
		covers := make([]layout.Box, rng.Intn(4))
		for i := range covers {
			covers[i] = randBox()
		}
		got := subtractBoxes(box, covers)
		for x := int64(0); x < 12; x++ {
			for y := int64(0); y < 12; y++ {
				cell := []int64{x, y}
				covered := false
				for _, c := range covers {
					covered = covered || c.Contains(cell)
				}
				want := box.Contains(cell) && !covered
				hits := 0
				for _, g := range got {
					if g.Contains(cell) {
						hits++
					}
				}
				if want && hits != 1 {
					t.Fatalf("trial %d: cell %v in %d result boxes, want exactly 1 (box %v minus %v = %v)", trial, cell, hits, box, covers, got)
				}
				if !want && hits != 0 {
					t.Fatalf("trial %d: cell %v in %d result boxes, want 0 (box %v minus %v = %v)", trial, cell, hits, box, covers, got)
				}
			}
		}
	}
}
