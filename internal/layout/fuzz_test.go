package layout

import (
	"sort"
	"testing"
)

// bruteRuns recomputes Runs the definitionally-correct way: enumerate
// every element of the clipped box, map it through Offset, sort, and
// merge adjacent offsets into maximal contiguous segments. O(size log
// size), but independent of every per-kind segment enumerator.
func bruteRuns(l *Layout, box Box) []Run {
	box = box.Clip(l.Dims())
	if box.Empty() {
		return nil
	}
	offs := make([]int64, 0, box.Size())
	cur := append([]int64(nil), box.Lo...)
	for {
		offs = append(offs, l.Offset(cur))
		k := len(cur) - 1
		for ; k >= 0; k-- {
			cur[k]++
			if cur[k] < box.Hi[k] {
				break
			}
			cur[k] = box.Lo[k]
		}
		if k < 0 {
			break
		}
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	var runs []Run
	for _, o := range offs {
		if n := len(runs); n > 0 && runs[n-1].Off+runs[n-1].Len == o {
			runs[n-1].Len++
		} else {
			runs = append(runs, Run{Off: o, Len: 1})
		}
	}
	return runs
}

// clampPos maps an arbitrary fuzzed int64 into [1, n].
func clampPos(v, n int64) int64 {
	v %= n
	if v < 0 {
		v += n
	}
	return v + 1
}

// fuzzBound maps an arbitrary fuzzed coordinate into [-2, dim+2] so the
// box exercises clipping on both sides without overflowing.
func fuzzBound(v, dim int64) int64 {
	span := dim + 5
	v %= span
	if v < 0 {
		v += span
	}
	return v - 2
}

// FuzzRuns cross-checks every layout kind's run enumerator against the
// brute-force per-element reference.
func FuzzRuns(f *testing.F) {
	// Seed corpus mirroring the table tests (runs_test.go): row-major
	// full-row bands and square tiles, column-major bands, the Figure-3
	// call-count shapes, diagonal and blocked layouts.
	f.Add(uint8(0), int64(8), int64(8), int64(2), int64(2), int64(1), int64(1), int64(2), int64(0), int64(5), int64(8), int64(0), int64(1))
	f.Add(uint8(0), int64(8), int64(8), int64(2), int64(2), int64(1), int64(1), int64(0), int64(0), int64(4), int64(4), int64(0), int64(1))
	f.Add(uint8(1), int64(8), int64(8), int64(2), int64(2), int64(1), int64(1), int64(0), int64(2), int64(8), int64(5), int64(0), int64(1))
	f.Add(uint8(1), int64(8), int64(8), int64(2), int64(2), int64(1), int64(1), int64(2), int64(0), int64(4), int64(8), int64(0), int64(1))
	f.Add(uint8(2), int64(8), int64(8), int64(2), int64(2), int64(1), int64(-1), int64(1), int64(1), int64(5), int64(6), int64(0), int64(1))
	f.Add(uint8(3), int64(8), int64(8), int64(2), int64(2), int64(1), int64(1), int64(0), int64(3), int64(6), int64(8), int64(0), int64(1))
	f.Add(uint8(4), int64(8), int64(8), int64(4), int64(4), int64(1), int64(1), int64(1), int64(1), int64(7), int64(7), int64(0), int64(1))
	f.Add(uint8(5), int64(6), int64(9), int64(3), int64(2), int64(2), int64(3), int64(0), int64(0), int64(6), int64(9), int64(0), int64(1))
	f.Add(uint8(6), int64(5), int64(4), int64(3), int64(2), int64(1), int64(1), int64(1), int64(0), int64(4), int64(3), int64(1), int64(3))

	f.Fuzz(func(t *testing.T, kind uint8, n, m, b1, b2, ga, gb, lo0, lo1, hi0, hi1, lo2, hi2 int64) {
		n, m = clampPos(n, 12), clampPos(m, 12)
		b1, b2 = clampPos(b1, 6), clampPos(b2, 6)
		var l *Layout
		rank := 2
		switch kind % 7 {
		case 0:
			l = RowMajor(n, m)
		case 1:
			l = ColMajor(n, m)
		case 2:
			l = Diagonal(n, m)
		case 3:
			l = AntiDiagonal(n, m)
		case 4:
			l = Blocked(n, m, b1, b2)
		case 5:
			// Arbitrary 2-D hyperplane (General falls back to the
			// closed-form kinds for canonical vectors).
			g := []int64{clampPos(ga, 4) - 2, clampPos(gb, 4) - 2}
			if g[0] == 0 && g[1] == 0 {
				g[0] = 1
			}
			l = General(n, m, g)
		case 6:
			// Rank-3 permutation layout.
			k3 := clampPos(b1, 6)
			perms := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}}
			l = NewPermutation([]int64{n, m, k3}, perms[int(clampPos(b2, int64(len(perms))))-1])
			rank = 3
		}
		dims := l.Dims()
		lo := []int64{fuzzBound(lo0, dims[0]), fuzzBound(lo1, dims[1])}
		hi := []int64{fuzzBound(hi0, dims[0]), fuzzBound(hi1, dims[1])}
		if rank == 3 {
			lo = append(lo, fuzzBound(lo2, dims[2]))
			hi = append(hi, fuzzBound(hi2, dims[2]))
		}
		for d := range lo {
			if hi[d] < lo[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		box := NewBox(lo, hi)

		got := l.Runs(box)
		want := bruteRuns(l, box)
		if len(got) != len(want) {
			t.Fatalf("%s box %v: %d runs, brute force %d\ngot  %v\nwant %v", l, box, len(got), len(want), got, want)
		}
		var total int64
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s box %v: run %d = %v, brute force %v", l, box, i, got[i], want[i])
			}
			if i > 0 && got[i].Off <= got[i-1].Off+got[i-1].Len {
				t.Fatalf("%s box %v: runs %d,%d not maximal/sorted: %v", l, box, i-1, i, got)
			}
			total += got[i].Len
		}
		if clipped := box.Clip(dims); total != clipped.Size() {
			t.Fatalf("%s box %v: runs cover %d elements, box holds %d", l, box, total, clipped.Size())
		}
	})
}

// FuzzBoxOverlaps cross-checks Overlaps against per-element membership.
func FuzzBoxOverlaps(f *testing.F) {
	f.Add(int64(0), int64(0), int64(4), int64(4), int64(2), int64(2), int64(6), int64(6))
	f.Add(int64(0), int64(0), int64(4), int64(4), int64(4), int64(0), int64(8), int64(4))
	f.Fuzz(func(t *testing.T, alo0, alo1, ahi0, ahi1, blo0, blo1, bhi0, bhi1 int64) {
		norm := func(lo, hi int64) (int64, int64) {
			lo, hi = fuzzBound(lo, 8), fuzzBound(hi, 8)
			if hi < lo {
				lo, hi = hi, lo
			}
			return lo, hi
		}
		al0, ah0 := norm(alo0, ahi0)
		al1, ah1 := norm(alo1, ahi1)
		bl0, bh0 := norm(blo0, bhi0)
		bl1, bh1 := norm(blo1, bhi1)
		a := NewBox([]int64{al0, al1}, []int64{ah0, ah1})
		b := NewBox([]int64{bl0, bl1}, []int64{bh0, bh1})
		want := false
		for i := al0; i < ah0 && !want; i++ {
			for j := al1; j < ah1; j++ {
				if b.Contains([]int64{i, j}) {
					want = true
					break
				}
			}
		}
		if got := a.Overlaps(b); got != want {
			t.Fatalf("Overlaps(%v, %v) = %v, element check %v", a, b, got, want)
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps not symmetric for %v, %v", a, b)
		}
	})
}
