package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allLayouts(n, m int64) []*Layout {
	return []*Layout{
		RowMajor(n, m),
		ColMajor(n, m),
		Diagonal(n, m),
		AntiDiagonal(n, m),
		Blocked(n, m, 3, 2),
		General(n, m, []int64{7, 4}),
		General(n, m, []int64{2, -3}),
	}
}

func TestOffsetBijective(t *testing.T) {
	for _, l := range allLayouts(7, 5) {
		seen := make(map[int64]bool)
		for i := int64(0); i < 7; i++ {
			for j := int64(0); j < 5; j++ {
				off := l.Offset([]int64{i, j})
				if off < 0 || off >= l.Size() {
					t.Fatalf("%s: offset %d out of range", l, off)
				}
				if seen[off] {
					t.Fatalf("%s: duplicate offset %d at (%d,%d)", l, off, i, j)
				}
				seen[off] = true
			}
		}
		if int64(len(seen)) != l.Size() {
			t.Errorf("%s: %d offsets, want %d", l, len(seen), l.Size())
		}
	}
}

func TestCoordInverse(t *testing.T) {
	for _, l := range allLayouts(6, 9) {
		for off := int64(0); off < l.Size(); off++ {
			c := l.Coord(off)
			if got := l.Offset(c); got != off {
				t.Fatalf("%s: Offset(Coord(%d)) = %d", l, off, got)
			}
		}
	}
}

func TestRowMajorOffsets(t *testing.T) {
	l := RowMajor(4, 6)
	if l.Offset([]int64{0, 0}) != 0 || l.Offset([]int64{0, 5}) != 5 || l.Offset([]int64{1, 0}) != 6 {
		t.Error("row-major offsets wrong")
	}
	if l.Offset([]int64{3, 5}) != 23 {
		t.Error("row-major last element wrong")
	}
}

func TestColMajorOffsets(t *testing.T) {
	l := ColMajor(4, 6)
	if l.Offset([]int64{0, 0}) != 0 || l.Offset([]int64{3, 0}) != 3 || l.Offset([]int64{0, 1}) != 4 {
		t.Error("col-major offsets wrong")
	}
}

func TestDiagonalAdjacency(t *testing.T) {
	// Consecutive file elements within a diagonal move by (+1,+1).
	l := Diagonal(5, 5)
	for off := int64(0); off < l.Size()-1; off++ {
		a, b := l.Coord(off), l.Coord(off+1)
		if a[0]-a[1] == b[0]-b[1] { // same diagonal
			if b[0] != a[0]+1 || b[1] != a[1]+1 {
				t.Fatalf("diagonal step from %v to %v", a, b)
			}
		}
	}
}

func TestAntiDiagonalAdjacency(t *testing.T) {
	l := AntiDiagonal(5, 4)
	for off := int64(0); off < l.Size()-1; off++ {
		a, b := l.Coord(off), l.Coord(off+1)
		if a[0]+a[1] == b[0]+b[1] {
			if b[0] != a[0]+1 || b[1] != a[1]-1 {
				t.Fatalf("anti-diagonal step from %v to %v", a, b)
			}
		}
	}
}

// TestFigure2Hyperplanes checks the paper's Figure 2 correspondence
// between layouts and hyperplane vectors.
func TestFigure2Hyperplanes(t *testing.T) {
	cases := []struct {
		l    *Layout
		want [2]int64
	}{
		{ColMajor(8, 8), [2]int64{0, 1}},
		{RowMajor(8, 8), [2]int64{1, 0}},
		{Diagonal(8, 8), [2]int64{1, -1}},
		{AntiDiagonal(8, 8), [2]int64{1, 1}},
	}
	for _, c := range cases {
		g := c.l.Hyperplane()
		if g[0] != c.want[0] || g[1] != c.want[1] {
			t.Errorf("%s hyperplane = %v, want %v", c.l, g, c.want)
		}
		// Two elements on the same hyperplane must be file-adjacent when
		// consecutive along the layout direction.
	}
	if Blocked(8, 8, 2, 2).Hyperplane() != nil {
		t.Error("blocked layout should have no single hyperplane vector")
	}
}

func TestGeneralRecognizesCanonical(t *testing.T) {
	if General(4, 4, []int64{3, 0}).Kind() != Permutation {
		t.Error("(3,0) should be row-major")
	}
	if General(4, 4, []int64{0, -2}).Kind() != Permutation {
		t.Error("(0,-2) should be col-major")
	}
	if General(4, 4, []int64{2, 2}).Kind() != AntiDiagonal2D {
		t.Error("(2,2) should be anti-diagonal")
	}
	if General(4, 4, []int64{-1, 1}).Kind() != Diagonal2D {
		t.Error("(-1,1) should be diagonal")
	}
	if General(4, 4, []int64{7, 4}).Kind() != General2D {
		t.Error("(7,4) should be general")
	}
}

func TestGeneralHyperplaneOrdering(t *testing.T) {
	// Elements must be sorted by g·a primarily.
	l := General(6, 6, []int64{7, 4})
	prevKey := int64(-1 << 62)
	for off := int64(0); off < l.Size(); off++ {
		c := l.Coord(off)
		key := 7*c[0] + 4*c[1]
		if key < prevKey {
			t.Fatalf("offset %d: key %d < previous %d", off, key, prevKey)
		}
		prevKey = key
	}
}

func TestFastDimension(t *testing.T) {
	if d, ok := RowMajor(4, 4).FastDimension(); !ok || d != 1 {
		t.Error("row-major fast dim")
	}
	if d, ok := ColMajor(4, 4).FastDimension(); !ok || d != 0 {
		t.Error("col-major fast dim")
	}
	if _, ok := Diagonal(4, 4).FastDimension(); ok {
		t.Error("diagonal has no fast dim")
	}
	l := FastDim([]int64{4, 5, 6}, 1)
	if d, ok := l.FastDimension(); !ok || d != 1 {
		t.Error("FastDim(1) fast dim")
	}
}

func TestPermutation3D(t *testing.T) {
	l := NewPermutation([]int64{3, 4, 5}, []int{2, 0, 1})
	// Fastest dim is 1 (extent 4); slowest dim is 2 (extent 5).
	if off := l.Offset([]int64{0, 1, 0}); off != 1 {
		t.Errorf("offset = %d", off)
	}
	if off := l.Offset([]int64{1, 0, 0}); off != 4 {
		t.Errorf("offset = %d", off)
	}
	if off := l.Offset([]int64{0, 0, 1}); off != 12 {
		t.Errorf("offset = %d", off)
	}
	// Full bijectivity.
	seen := map[int64]bool{}
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 4; j++ {
			for k := int64(0); k < 5; k++ {
				off := l.Offset([]int64{i, j, k})
				if seen[off] {
					t.Fatal("duplicate offset in 3-D permutation")
				}
				seen[off] = true
				c := l.Coord(off)
				if c[0] != i || c[1] != j || c[2] != k {
					t.Fatalf("Coord(Offset(%d,%d,%d)) = %v", i, j, k, c)
				}
			}
		}
	}
}

func TestEqual(t *testing.T) {
	if !RowMajor(4, 4).Equal(RowMajor(4, 4)) {
		t.Error("identical layouts unequal")
	}
	if RowMajor(4, 4).Equal(ColMajor(4, 4)) {
		t.Error("row == col")
	}
	if RowMajor(4, 4).Equal(RowMajor(4, 5)) {
		t.Error("different dims equal")
	}
	if !General(4, 4, []int64{7, 4}).Equal(General(4, 4, []int64{14, 8})) {
		t.Error("scaled hyperplane vectors unequal")
	}
	if !Blocked(4, 4, 2, 2).Equal(Blocked(4, 4, 2, 2)) {
		t.Error("identical blocked unequal")
	}
	if Blocked(4, 4, 2, 2).Equal(Blocked(4, 4, 2, 4)) {
		t.Error("different blocks equal")
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	mustPanic(t, func() { NewPermutation([]int64{2, 2}, []int{0}) })
	mustPanic(t, func() { NewPermutation([]int64{2, 2}, []int{0, 0}) })
	mustPanic(t, func() { General(2, 2, []int64{0, 0}) })
	mustPanic(t, func() { Blocked(4, 4, 0, 2) })
	mustPanic(t, func() { FastDim([]int64{2, 2}, 5) })
	mustPanic(t, func() { RowMajor(2, 2).Offset([]int64{2, 0}) })
	mustPanic(t, func() { RowMajor(2, 2).Coord(4) })
	mustPanic(t, func() { ForHyperplane([]int64{2, 2, 2}, []int64{1, 0}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestPropertyOffsetBijectiveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := int64(2+rng.Intn(6)), int64(2+rng.Intn(6))
		g := []int64{int64(rng.Intn(9) - 4), int64(rng.Intn(9) - 4)}
		if g[0] == 0 && g[1] == 0 {
			g[0] = 1
		}
		ls := []*Layout{
			General(n, m, g),
			Blocked(n, m, int64(1+rng.Intn(3)), int64(1+rng.Intn(3))),
		}
		for _, l := range ls {
			seen := map[int64]bool{}
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < m; j++ {
					off := l.Offset([]int64{i, j})
					if off < 0 || off >= n*m || seen[off] {
						return false
					}
					seen[off] = true
					c := l.Coord(off)
					if c[0] != i || c[1] != j {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
