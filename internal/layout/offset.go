package layout

import "fmt"

// Offset maps array coordinates c to the linear file offset (in
// elements) under the layout. It is a bijection from the array box to
// [0, Size()).
func (l *Layout) Offset(c []int64) int64 {
	if len(c) != len(l.dims) {
		panic("layout: coordinate rank mismatch")
	}
	for d, x := range c {
		if x < 0 || x >= l.dims[d] {
			panic(fmt.Sprintf("layout: coordinate %v out of bounds %v", c, l.dims))
		}
	}
	switch l.kind {
	case Permutation:
		var off int64
		for _, d := range l.perm {
			off = off*l.dims[d] + c[d]
		}
		return off
	case Diagonal2D:
		// Diagonal d = i - j, ordered d ascending from -(m-1); within a
		// diagonal, ascending i.
		i, j := c[0], c[1]
		d := i - j
		return l.diagStart(d+l.dims[1]-1) + (i - maxI64(0, d))
	case AntiDiagonal2D:
		// Anti-diagonal s = i + j, ascending; within, ascending i.
		i, j := c[0], c[1]
		s := i + j
		return l.diagStart(s) + (i - maxI64(0, s-(l.dims[1]-1)))
	case General2D:
		l.buildTable()
		return l.table[c[0]*l.dims[1]+c[1]]
	case Blocked2D:
		b1, b2 := l.block[0], l.block[1]
		bi, bj := c[0]/b1, c[1]/b2
		ri, rj := c[0]%b1, c[1]%b2
		// Within-block row-major over the (possibly clipped) block.
		bw := minI64(b2, l.dims[1]-bj*b2)
		return l.blockStart(bi, bj) + ri*bw + rj
	default:
		panic("layout: unknown kind")
	}
}

// Coord maps a file offset back to array coordinates (inverse of
// Offset).
func (l *Layout) Coord(off int64) []int64 {
	if off < 0 || off >= l.Size() {
		panic("layout: offset out of range")
	}
	switch l.kind {
	case Permutation:
		c := make([]int64, len(l.dims))
		for k := len(l.perm) - 1; k >= 0; k-- {
			d := l.perm[k]
			c[d] = off % l.dims[d]
			off /= l.dims[d]
		}
		return c
	case Diagonal2D:
		k := l.findDiag(off)
		d := k - (l.dims[1] - 1)
		i := maxI64(0, d) + (off - l.diagStart(k))
		return []int64{i, i - d}
	case AntiDiagonal2D:
		s := l.findDiag(off)
		i := maxI64(0, s-(l.dims[1]-1)) + (off - l.diagStart(s))
		return []int64{i, s - i}
	case General2D:
		l.buildTable()
		lin := l.tableInv[off]
		return []int64{lin / l.dims[1], lin % l.dims[1]}
	case Blocked2D:
		starts := l.blockStarts()
		// Binary search over block starts.
		lo, hi := 0, len(starts)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if starts[mid] <= off {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		nb2 := ceilDiv(l.dims[1], l.block[1])
		bi, bj := int64(lo)/nb2, int64(lo)%nb2
		rem := off - starts[lo]
		bw := minI64(l.block[1], l.dims[1]-bj*l.block[1])
		return []int64{bi*l.block[0] + rem/bw, bj*l.block[1] + rem%bw}
	default:
		panic("layout: unknown kind")
	}
}

// diagCount returns the number of diagonals (for both diagonal kinds
// the count is n+m-1).
func (l *Layout) diagCount() int64 { return l.dims[0] + l.dims[1] - 1 }

// diagLen returns the length of normalized diagonal k in [0, n+m-1).
// For AntiDiagonal2D k = i+j; for Diagonal2D k = (i-j) + (m-1). Both
// parameterizations give the same length profile.
func (l *Layout) diagLen(k int64) int64 {
	n, m := l.dims[0], l.dims[1]
	return minI64(k, n-1) - maxI64(0, k-(m-1)) + 1
}

// diagStart returns the file offset where normalized diagonal k begins,
// memoizing the prefix sums.
func (l *Layout) diagStart(k int64) int64 {
	if l.starts == nil {
		starts := make([]int64, l.diagCount()+1)
		for d := int64(0); d < l.diagCount(); d++ {
			starts[d+1] = starts[d] + l.diagLen(d)
		}
		l.starts = starts
	}
	return l.starts[k]
}

// findDiag returns the normalized diagonal containing file offset off.
func (l *Layout) findDiag(off int64) int64 {
	l.diagStart(0)
	lo, hi := int64(0), l.diagCount()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.starts[mid] <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// blockStarts memoizes per-block start offsets, row-major over blocks.
func (l *Layout) blockStarts() []int64 {
	if l.starts == nil {
		nb1 := ceilDiv(l.dims[0], l.block[0])
		nb2 := ceilDiv(l.dims[1], l.block[1])
		starts := make([]int64, nb1*nb2)
		var acc int64
		for bi := int64(0); bi < nb1; bi++ {
			bh := minI64(l.block[0], l.dims[0]-bi*l.block[0])
			for bj := int64(0); bj < nb2; bj++ {
				bw := minI64(l.block[1], l.dims[1]-bj*l.block[1])
				starts[bi*nb2+bj] = acc
				acc += bh * bw
			}
		}
		l.starts = starts
	}
	return l.starts
}

func (l *Layout) blockStart(bi, bj int64) int64 {
	nb2 := ceilDiv(l.dims[1], l.block[1])
	return l.blockStarts()[bi*nb2+bj]
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
