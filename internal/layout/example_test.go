package layout_test

import (
	"fmt"

	"outcore/internal/layout"
)

// ExampleLayout_Runs reproduces the arithmetic of the paper's Figure 3:
// under an 8-element-per-call cap, a traditional 4x4 tile of a
// column-major array costs 4 I/O calls, the out-of-core 8x2 tile only 2.
func ExampleLayout_Runs() {
	l := layout.ColMajor(8, 8)
	calls := func(box layout.Box) (c int64) {
		for _, r := range l.Runs(box) {
			c += (r.Len + 7) / 8
		}
		return c
	}
	fmt.Println("4x4 tile:", calls(layout.NewBox([]int64{0, 0}, []int64{4, 4})), "calls")
	fmt.Println("8x2 tile:", calls(layout.NewBox([]int64{0, 0}, []int64{8, 2})), "calls")
	// Output:
	// 4x4 tile: 4 calls
	// 8x2 tile: 2 calls
}

// ExampleGeneral shows a hyperplane layout beyond the canonical four:
// (7,4) stores elements with equal 7a+4b consecutively, exactly the
// paper's closing example in Section 3.2.1.
func ExampleGeneral() {
	l := layout.General(4, 4, []int64{7, 4})
	fmt.Println(l.Name())
	// File order follows increasing hyperplane value 7a+4b:
	fmt.Println(l.Offset([]int64{0, 0}), l.Offset([]int64{1, 1}), l.Offset([]int64{2, 2}))
	// Output:
	// hyperplane(7,4)
	// 0 4 11
}
