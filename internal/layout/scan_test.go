package layout

import (
	"testing"
)

// paint marks every element of each chunk in a box-local bitmap and
// fails on overlap; afterwards the caller checks full coverage.
func paintPlan(t *testing.T, box Box, plan []Box) {
	t.Helper()
	rank := box.Rank()
	dims := make([]int64, rank)
	total := int64(1)
	for d := 0; d < rank; d++ {
		dims[d] = box.Hi[d] - box.Lo[d]
		total *= dims[d]
	}
	seen := make([]bool, total)
	lin := func(c []int64) int64 {
		off := int64(0)
		for d := 0; d < rank; d++ {
			off = off*dims[d] + (c[d] - box.Lo[d])
		}
		return off
	}
	var covered int64
	for ci, ch := range plan {
		if ch.Empty() {
			t.Fatalf("chunk %d is empty: %v", ci, ch)
		}
		cur := make([]int64, rank)
		copy(cur, ch.Lo)
		for {
			o := lin(cur)
			if seen[o] {
				t.Fatalf("chunk %d revisits element %v", ci, cur)
			}
			seen[o] = true
			covered++
			k := rank - 1
			for ; k >= 0; k-- {
				cur[k]++
				if cur[k] < ch.Hi[k] {
					break
				}
				cur[k] = ch.Lo[k]
			}
			if k < 0 {
				break
			}
		}
	}
	if covered != total {
		t.Fatalf("plan covers %d of %d elements", covered, total)
	}
}

// TestPlanScanCoverage: every plan partitions its box — each element
// delivered exactly once, chunks within the element budget.
func TestPlanScanCoverage(t *testing.T) {
	cases := []struct {
		name  string
		l     *Layout
		box   Box
		chunk int64
	}{
		{"row-full", RowMajor(64, 64), NewBox([]int64{0, 0}, []int64{64, 64}), 512},
		{"row-partial", RowMajor(64, 64), NewBox([]int64{8, 8}, []int64{56, 56}), 512},
		{"row-tiny-chunk", RowMajor(64, 64), NewBox([]int64{3, 5}, []int64{61, 59}), 7},
		{"col-full", ColMajor(64, 64), NewBox([]int64{0, 0}, []int64{64, 64}), 512},
		{"col-partial", ColMajor(64, 64), NewBox([]int64{1, 2}, []int64{63, 62}), 100},
		{"diag", Diagonal(48, 48), NewBox([]int64{4, 4}, []int64{44, 44}), 256},
		{"antidiag", AntiDiagonal(48, 48), NewBox([]int64{0, 0}, []int64{48, 48}), 333},
		{"blocked", Blocked(64, 64, 8, 8), NewBox([]int64{5, 5}, []int64{59, 59}), 512},
		{"rank3", FastDim([]int64{16, 16, 16}, 1), NewBox([]int64{2, 2, 2}, []int64{14, 14, 14}), 96},
		{"rank1", RowMajor(1000), NewBox([]int64{17}, []int64{911}), 128},
		{"unbounded", RowMajor(32, 32), NewBox([]int64{0, 0}, []int64{32, 32}), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := PlanScan(tc.l, tc.box, tc.chunk)
			if len(plan) == 0 {
				t.Fatal("empty plan for non-empty box")
			}
			paintPlan(t, tc.box, plan)
			if tc.chunk > 0 {
				for i, ch := range plan {
					if ch.Size() > tc.chunk {
						t.Fatalf("chunk %d has %d elems > budget %d", i, ch.Size(), tc.chunk)
					}
				}
			}
		})
	}
	if got := PlanScan(RowMajor(8, 8), NewBox([]int64{4, 4}, []int64{4, 8}), 16); got != nil {
		t.Fatalf("empty box produced a plan: %v", got)
	}
}

// TestPlanScanSeeks is the paper's Claim 1 as an executable test: a
// plan matched to the layout's hyperplane reads maximal contiguous
// runs (full-width slabs merge into a single run each), while the
// transposed plan pays a seek per row. Backend seeks are counted with
// PlanSeeks over the layout's own Runs enumeration.
func TestPlanScanSeeks(t *testing.T) {
	const edge, chunk = 64, 512 // 8 full rows per chunk
	full := NewBox([]int64{0, 0}, []int64{edge, edge})

	cases := []struct {
		name         string
		l, transpose *Layout
		box          Box
		wantMatched  int64
	}{
		// Full-width row-major scan: every slab is file-adjacent to the
		// previous one — the whole scan is one seek.
		{"row-major-full", RowMajor(edge, edge), ColMajor(edge, edge), full, 1},
		{"col-major-full", ColMajor(edge, edge), RowMajor(edge, edge), full, 1},
		// Partial-width box: the best any rectangular plan can do is one
		// run per row (48 rows), and the matched plan achieves it.
		{"row-major-partial", RowMajor(edge, edge), ColMajor(edge, edge),
			NewBox([]int64{8, 8}, []int64{56, 56}), 48},
		{"col-major-partial", ColMajor(edge, edge), RowMajor(edge, edge),
			NewBox([]int64{8, 8}, []int64{56, 56}), 48},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			matched := PlanSeeks(tc.l, PlanScan(tc.l, tc.box, chunk))
			transposed := PlanSeeks(tc.l, PlanScan(tc.transpose, tc.box, chunk))
			if matched != tc.wantMatched {
				t.Errorf("matched plan seeks = %d, want %d", matched, tc.wantMatched)
			}
			if transposed < 4*matched {
				t.Errorf("transposed plan seeks = %d, want >= 4x matched (%d)", transposed, matched)
			}
			// Per-stripe maximality: no chunk of the matched plan may read
			// more runs than it has rows of the fast dimension — each slab
			// row coalesces into exactly one run.
			fast, ok := tc.l.FastDimension()
			if !ok {
				t.Fatal("permutation layout lost its fast dimension")
			}
			for i, ch := range PlanScan(tc.l, tc.box, chunk) {
				rows := ch.Size() / (ch.Hi[fast] - ch.Lo[fast])
				if rc := tc.l.RunCount(ch); rc > rows {
					t.Errorf("chunk %d: %d runs > %d rows (non-maximal stripes)", i, rc, rows)
				}
			}
		})
	}

	// Diagonal layouts have no rectangular stripe direction: the planner
	// falls back to row-major slabs, and what helps is chunk size — the
	// whole-box chunk is a single contiguous read under any bijective
	// layout of the full array.
	d := Diagonal(edge, edge)
	if got := PlanSeeks(d, PlanScan(d, full, 0)); got != 1 {
		t.Errorf("diagonal whole-box scan seeks = %d, want 1", got)
	}
	chunked := PlanSeeks(d, PlanScan(d, full, chunk))
	if whole := PlanSeeks(d, PlanScan(d, full, 0)); chunked < whole {
		t.Errorf("chunked diagonal scan (%d seeks) beat whole-box (%d)", chunked, whole)
	}
}
