package layout

// Scan planning: turn a box into an ordered list of rectangular chunks
// whose visit order follows the layout's storage order, so a streaming
// scan reads long contiguous file runs instead of hopping (Claim 1
// applied to the serving plane). Each chunk is itself a Box, so a chunk
// is fetched and framed exactly like a tile GET of that box — the
// differential contract the conformance suite checks.

// PlanScan splits box into chunks of at most chunkElems elements and
// returns them in the order a scan should visit them. For permutation
// layouts the plan follows the layout's own dimension order: chunks are
// slabs of whole fast-dimension rows, grouped along the fastest slow
// dimension, visited perm-lexicographically — consecutive chunks of a
// full-width box are adjacent in the file. Layouts without a single
// fast dimension (diagonal, general, blocked) fall back to row-major
// slabs: any rectangular chunk covers the same file bytes under a
// bijective layout, so chunk size, not visit order, is what matters
// there. chunkElems <= 0 means a single chunk covering the whole box.
func PlanScan(l *Layout, box Box, chunkElems int64) []Box {
	box = box.Clip(l.dims)
	if box.Empty() {
		return nil
	}
	return planPerm(box, l.scanOrder(), chunkElems)
}

// PlanRowMajor splits box into row-major slabs of at most chunkElems
// elements, independent of any layout — the order in which a box-local
// payload linearizes its elements. Reductions chunk through this plan
// so their fold order matches a client folding a plain GET. The box is
// not clipped; callers validate it against the array first.
func PlanRowMajor(box Box, chunkElems int64) []Box {
	if box.Empty() {
		return nil
	}
	perm := make([]int, box.Rank())
	for i := range perm {
		perm[i] = i
	}
	return planPerm(box, perm, chunkElems)
}

// scanOrder returns the dimension visit order (slowest to fastest) the
// planner uses for l.
func (l *Layout) scanOrder() []int {
	if l.kind == Permutation {
		return append([]int(nil), l.perm...)
	}
	perm := make([]int, len(l.dims))
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// planPerm enumerates chunk boxes of box in perm-lexicographic order.
// A chunk spans the full box extent along the fast dimension (split
// when a single row exceeds chunkElems) and as many consecutive
// coordinates of the fastest slow dimension as fit in chunkElems.
func planPerm(box Box, perm []int, chunkElems int64) []Box {
	rank := len(perm)
	fast := perm[rank-1]
	rowLen := box.Hi[fast] - box.Lo[fast]
	if chunkElems <= 0 {
		chunkElems = box.Size()
	}

	var out []Box
	point := func(cur []int64) ([]int64, []int64) {
		lo := make([]int64, rank)
		hi := make([]int64, rank)
		for d := 0; d < rank; d++ {
			lo[d], hi[d] = cur[d], cur[d]+1
		}
		return lo, hi
	}

	if rank == 1 {
		for s := box.Lo[0]; s < box.Hi[0]; s += chunkElems {
			out = append(out, Box{Lo: []int64{s}, Hi: []int64{minI64(s+chunkElems, box.Hi[0])}})
		}
		return out
	}

	group := perm[rank-2]            // fastest slow dimension: slab axis
	outer := perm[: rank-2 : rank-2] // remaining slow dims, slowest first

	rowsPerChunk := int64(0)
	if rowLen > 0 {
		rowsPerChunk = chunkElems / rowLen
	}

	cur := make([]int64, rank)
	copy(cur, box.Lo)
	for {
		if rowsPerChunk >= 1 {
			// Whole rows fit: emit slabs along the group dimension.
			for g := box.Lo[group]; g < box.Hi[group]; g += rowsPerChunk {
				cur[group] = g
				lo, hi := point(cur)
				hi[group] = minI64(g+rowsPerChunk, box.Hi[group])
				lo[fast], hi[fast] = box.Lo[fast], box.Hi[fast]
				out = append(out, Box{Lo: lo, Hi: hi})
			}
		} else {
			// A single row overflows chunkElems: split it along fast.
			for g := box.Lo[group]; g < box.Hi[group]; g++ {
				cur[group] = g
				for s := box.Lo[fast]; s < box.Hi[fast]; s += chunkElems {
					lo, hi := point(cur)
					lo[fast], hi[fast] = s, minI64(s+chunkElems, box.Hi[fast])
					out = append(out, Box{Lo: lo, Hi: hi})
				}
			}
		}
		cur[group] = box.Lo[group]
		// Advance the outer dims odometer-style, fastest last.
		k := len(outer) - 1
		for ; k >= 0; k-- {
			d := outer[k]
			cur[d]++
			if cur[d] < box.Hi[d] {
				break
			}
			cur[d] = box.Lo[d]
		}
		if k < 0 {
			return out
		}
	}
}

// PlanSeeks counts the backend seeks a plan incurs under layout l: the
// number of file runs, visited in plan order, that do not start where
// the previous run ended. The first run is one seek. A plan matched to
// the layout of a full-width box costs a single seek; a transposed plan
// pays one per row — the paper's I/O-request metric for the scan path.
func PlanSeeks(l *Layout, plan []Box) int64 {
	var seeks int64
	next := int64(-1)
	for _, c := range plan {
		for _, r := range l.Runs(c) {
			if r.Off != next {
				seeks++
			}
			next = r.Off + r.Len
		}
	}
	return seeks
}
