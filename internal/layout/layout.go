// Package layout implements hyperplane-based file layouts for
// out-of-core arrays (Section 3.2.1 of the paper).
//
// A layout is a bijection from m-dimensional array coordinates to a
// linear file offset (in elements). The paper characterizes layouts by
// a hyperplane family g = (g1, ..., gm): elements on the same
// hyperplane {a : g·a = c} are stored consecutively, so a reference has
// spatial locality in the innermost loop exactly when its per-iteration
// movement vector lies in the hyperplane (g · L · q_last = 0, Claim 1).
//
// Canonical 2-D layouts get closed-form offset and run enumeration;
// arbitrary 2-D hyperplanes fall back to a precomputed permutation
// table; higher-rank arrays use dimension-permutation layouts (the
// "dimension re-ordering" class of data transformations).
package layout

import (
	"fmt"
	"sort"
)

// Kind enumerates layout families.
type Kind int

const (
	// Permutation stores elements lexicographically by a permutation of
	// the dimensions; identity permutation is row-major, reversed is
	// column-major (for rank 2).
	Permutation Kind = iota
	// Diagonal2D stores 2-D diagonals (i - j = c) consecutively:
	// hyperplane vector (1, -1).
	Diagonal2D
	// AntiDiagonal2D stores 2-D anti-diagonals (i + j = c)
	// consecutively: hyperplane vector (1, 1).
	AntiDiagonal2D
	// General2D stores elements ordered by an arbitrary hyperplane
	// vector g: primary key g·a, secondary key the row coordinate.
	General2D
	// Blocked2D stores b1 x b2 blocks; blocks ordered row-major, and
	// row-major inside each block (Figure 2, last layout).
	Blocked2D
)

// Layout is a concrete file layout bound to fixed array extents.
type Layout struct {
	kind  Kind
	dims  []int64
	perm  []int   // Permutation: dims[perm[0]] slowest ... dims[perm[last]] fastest
	g     []int64 // General2D hyperplane vector
	block []int64 // Blocked2D block extents

	table    []int64 // General2D: coordinate-linearization -> offset
	tableInv []int64
	starts   []int64 // Diagonal/AntiDiagonal: per-diagonal start offsets; Blocked2D: per-block starts
}

// RowMajor returns the row-major layout (last dimension fastest).
func RowMajor(dims ...int64) *Layout {
	perm := make([]int, len(dims))
	for i := range perm {
		perm[i] = i
	}
	return NewPermutation(dims, perm)
}

// ColMajor returns the column-major layout (first dimension fastest).
func ColMajor(dims ...int64) *Layout {
	perm := make([]int, len(dims))
	for i := range perm {
		perm[i] = len(dims) - 1 - i
	}
	return NewPermutation(dims, perm)
}

// NewPermutation returns a dimension-reordering layout; perm lists
// dimensions from slowest to fastest varying.
func NewPermutation(dims []int64, perm []int) *Layout {
	if len(perm) != len(dims) {
		panic("layout: permutation length mismatch")
	}
	seen := make([]bool, len(dims))
	for _, p := range perm {
		if p < 0 || p >= len(dims) || seen[p] {
			panic("layout: invalid permutation")
		}
		seen[p] = true
	}
	return &Layout{kind: Permutation, dims: cloneI64(dims), perm: append([]int(nil), perm...)}
}

// Diagonal returns the 2-D diagonal layout (hyperplane (1,-1)).
func Diagonal(n, m int64) *Layout {
	return &Layout{kind: Diagonal2D, dims: []int64{n, m}}
}

// AntiDiagonal returns the 2-D anti-diagonal layout (hyperplane (1,1)).
func AntiDiagonal(n, m int64) *Layout {
	return &Layout{kind: AntiDiagonal2D, dims: []int64{n, m}}
}

// Blocked returns the 2-D blocked layout with b1 x b2 blocks.
func Blocked(n, m, b1, b2 int64) *Layout {
	if b1 <= 0 || b2 <= 0 {
		panic("layout: non-positive block extents")
	}
	return &Layout{kind: Blocked2D, dims: []int64{n, m}, block: []int64{b1, b2}}
}

// General returns the layout for an arbitrary 2-D hyperplane vector g
// (not both components zero). Canonical vectors are recognized and get
// their closed-form implementations.
func General(n, m int64, g []int64) *Layout {
	if len(g) != 2 || (g[0] == 0 && g[1] == 0) {
		panic("layout: invalid hyperplane vector")
	}
	switch {
	case g[0] != 0 && g[1] == 0: // rows are hyperplanes: row-major
		return RowMajor(n, m)
	case g[0] == 0 && g[1] != 0: // columns are hyperplanes: column-major
		return ColMajor(n, m)
	case g[0] == g[1] || g[0] == -g[1]:
		if sameSign(g[0], g[1]) {
			return AntiDiagonal(n, m)
		}
		return Diagonal(n, m)
	}
	return &Layout{kind: General2D, dims: []int64{n, m}, g: cloneI64(g)}
}

// ForHyperplane builds a layout from a hyperplane vector for rank-2
// arrays, or from a "fast dimension" basis vector for higher ranks
// (where v is the contiguity DIRECTION, i.e. v = L·q_last; the layout
// keeps dimension d fastest when v is parallel to e_d).
func ForHyperplane(dims []int64, g []int64) *Layout {
	if len(dims) == 2 {
		return General(dims[0], dims[1], g)
	}
	panic("layout: ForHyperplane supports rank-2 arrays; use FastDim for higher ranks")
}

// FastDim returns the permutation layout that makes dimension d the
// fastest-varying one, keeping the remaining dimensions in their
// original relative order.
func FastDim(dims []int64, d int) *Layout {
	if d < 0 || d >= len(dims) {
		panic("layout: fast dimension out of range")
	}
	perm := make([]int, 0, len(dims))
	for i := range dims {
		if i != d {
			perm = append(perm, i)
		}
	}
	perm = append(perm, d)
	return NewPermutation(dims, perm)
}

// Kind returns the layout family.
func (l *Layout) Kind() Kind { return l.kind }

// Dims returns the array extents the layout is bound to.
func (l *Layout) Dims() []int64 { return cloneI64(l.dims) }

// Rank returns the array rank.
func (l *Layout) Rank() int { return len(l.dims) }

// Size returns the total number of elements.
func (l *Layout) Size() int64 {
	n := int64(1)
	for _, d := range l.dims {
		n *= d
	}
	return n
}

// FastDimension returns the dimension along which consecutive file
// elements move, and ok=false for layouts without a single such
// dimension (diagonal/general/blocked).
func (l *Layout) FastDimension() (int, bool) {
	if l.kind == Permutation {
		return l.perm[len(l.perm)-1], true
	}
	return -1, false
}

// Hyperplane returns the hyperplane vector characterizing the layout
// for rank-2 layouts (nil for blocked layouts, which the paper's model
// treats separately).
func (l *Layout) Hyperplane() []int64 {
	switch l.kind {
	case Permutation:
		if len(l.dims) != 2 {
			return nil
		}
		if l.perm[1] == 1 { // row-major: rows contiguous
			return []int64{1, 0}
		}
		return []int64{0, 1}
	case Diagonal2D:
		return []int64{1, -1}
	case AntiDiagonal2D:
		return []int64{1, 1}
	case General2D:
		return cloneI64(l.g)
	default:
		return nil
	}
}

// Name returns a short human-readable description.
func (l *Layout) Name() string {
	switch l.kind {
	case Permutation:
		if len(l.dims) == 2 {
			if l.perm[1] == 1 {
				return "row-major"
			}
			return "col-major"
		}
		return fmt.Sprintf("perm%v", l.perm)
	case Diagonal2D:
		return "diagonal"
	case AntiDiagonal2D:
		return "anti-diagonal"
	case General2D:
		return fmt.Sprintf("hyperplane(%d,%d)", l.g[0], l.g[1])
	case Blocked2D:
		return fmt.Sprintf("blocked(%dx%d)", l.block[0], l.block[1])
	default:
		return "unknown"
	}
}

func (l *Layout) String() string { return l.Name() }

// Equal reports whether two layouts produce identical element orders.
func (l *Layout) Equal(o *Layout) bool {
	if l.kind != o.kind || len(l.dims) != len(o.dims) {
		return false
	}
	for i := range l.dims {
		if l.dims[i] != o.dims[i] {
			return false
		}
	}
	switch l.kind {
	case Permutation:
		for i := range l.perm {
			if l.perm[i] != o.perm[i] {
				return false
			}
		}
	case General2D:
		if l.g[0]*o.g[1] != l.g[1]*o.g[0] { // same direction up to scale
			return false
		}
	case Blocked2D:
		if l.block[0] != o.block[0] || l.block[1] != o.block[1] {
			return false
		}
	}
	return true
}

func cloneI64(v []int64) []int64 {
	out := make([]int64, len(v))
	copy(out, v)
	return out
}

func sameSign(a, b int64) bool { return (a > 0) == (b > 0) }

// buildTable materializes the General2D permutation: elements sorted by
// (g·a, a0). Lazy because it is O(N·M) space and only exotic layouts
// need it.
func (l *Layout) buildTable() {
	if l.table != nil {
		return
	}
	n, m := l.dims[0], l.dims[1]
	type ent struct {
		key, row, lin int64
	}
	ents := make([]ent, 0, n*m)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < m; j++ {
			ents = append(ents, ent{key: l.g[0]*i + l.g[1]*j, row: i, lin: i*m + j})
		}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].key != ents[b].key {
			return ents[a].key < ents[b].key
		}
		return ents[a].row < ents[b].row
	})
	l.table = make([]int64, n*m)
	l.tableInv = make([]int64, n*m)
	for off, e := range ents {
		l.table[e.lin] = int64(off)
		l.tableInv[off] = e.lin
	}
}
