package layout

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox([]int64{1, 2}, []int64{4, 5})
	if b.Size() != 9 || b.Empty() {
		t.Error("box size wrong")
	}
	if !b.Contains([]int64{1, 2}) || b.Contains([]int64{4, 2}) || b.Contains([]int64{1, 5}) {
		t.Error("Contains wrong")
	}
	c := b.Clip([]int64{3, 10})
	if c.Hi[0] != 3 || c.Hi[1] != 5 {
		t.Errorf("Clip = %v", c)
	}
	if !NewBox([]int64{2, 2}, []int64{2, 5}).Empty() {
		t.Error("degenerate box not empty")
	}
	mustPanic(t, func() { NewBox([]int64{2}, []int64{1}) })
	mustPanic(t, func() { NewBox([]int64{0, 0}, []int64{1}) })
}

func TestRunsRowMajorFullRows(t *testing.T) {
	l := RowMajor(8, 8)
	// A band of full rows is one contiguous run.
	runs := l.Runs(NewBox([]int64{2, 0}, []int64{5, 8}))
	if len(runs) != 1 || runs[0].Off != 16 || runs[0].Len != 24 {
		t.Errorf("runs = %v", runs)
	}
	// A square tile not spanning full rows: one run per row.
	runs = l.Runs(NewBox([]int64{0, 0}, []int64{4, 4}))
	if len(runs) != 4 {
		t.Errorf("square tile runs = %v", runs)
	}
	for k, r := range runs {
		if r.Len != 4 || r.Off != int64(k)*8 {
			t.Errorf("run %d = %v", k, r)
		}
	}
}

func TestRunsColMajor(t *testing.T) {
	l := ColMajor(8, 8)
	// A band of full columns is one run.
	runs := l.Runs(NewBox([]int64{0, 2}, []int64{8, 5}))
	if len(runs) != 1 || runs[0].Off != 16 || runs[0].Len != 24 {
		t.Errorf("runs = %v", runs)
	}
	// A row band costs one run per column.
	runs = l.Runs(NewBox([]int64{2, 0}, []int64{4, 8}))
	if len(runs) != 8 {
		t.Errorf("row band runs = %d", len(runs))
	}
}

// TestFigure3CallCounts reproduces the arithmetic of the paper's
// Figure 3 with 8x8 arrays, a memory of 32 elements split across two
// arrays per nest, and at most 8 elements per I/O call.
func TestFigure3CallCounts(t *testing.T) {
	const maxCall = 8
	calls := func(runs []Run) int64 {
		var c int64
		for _, r := range runs {
			c += (r.Len + maxCall - 1) / maxCall
		}
		return c
	}
	colV := ColMajor(8, 8)
	// Traditional tiling: 4x4 tile of column-major V -> 4 I/O calls of 4
	// elements each (Figure 3(a)).
	trad := calls(colV.Runs(NewBox([]int64{0, 0}, []int64{4, 4})))
	if trad != 4 {
		t.Errorf("traditional 4x4 tile: %d calls, want 4", trad)
	}
	// OOC tiling: 2 full columns (16 elements, contiguous per column,
	// columns adjacent in file) -> 16 contiguous elements = 2 calls of 8
	// (Figure 3(b)).
	ooc := calls(colV.Runs(NewBox([]int64{0, 0}, []int64{8, 2})))
	if ooc != 2 {
		t.Errorf("OOC 8x2 tile: %d calls, want 2", ooc)
	}
}

func TestRunsDiagonal(t *testing.T) {
	l := Diagonal(6, 6)
	// The main-diagonal band within a tile: each diagonal is one run.
	runs := l.Runs(NewBox([]int64{0, 0}, []int64{3, 3}))
	// Diagonals intersecting a 3x3 corner tile: d = -2..2 -> 5 runs, but
	// adjacent ones can merge only if file-contiguous (they are not, for
	// a corner tile of a larger array).
	if len(runs) != 5 {
		t.Errorf("diagonal tile runs = %d (%v)", len(runs), runs)
	}
	// The full array must be exactly one run.
	full := l.Runs(NewBox([]int64{0, 0}, []int64{6, 6}))
	if len(full) != 1 || full[0].Off != 0 || full[0].Len != 36 {
		t.Errorf("full-array runs = %v", full)
	}
}

func TestRunsBlocked(t *testing.T) {
	l := Blocked(8, 8, 4, 4)
	// One aligned block is exactly one run.
	runs := l.Runs(NewBox([]int64{0, 0}, []int64{4, 4}))
	if len(runs) != 1 || runs[0].Len != 16 {
		t.Errorf("aligned block runs = %v", runs)
	}
	// A block-misaligned tile touches 4 blocks.
	runs = l.Runs(NewBox([]int64{2, 2}, []int64{6, 6}))
	if len(runs) <= 1 {
		t.Errorf("misaligned tile runs = %v", runs)
	}
}

func TestRunsClipToArray(t *testing.T) {
	l := RowMajor(4, 4)
	runs := l.Runs(NewBox([]int64{2, 2}, []int64{10, 10}))
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	if total != 4 { // rows 2..3 x cols 2..3
		t.Errorf("clipped coverage = %d", total)
	}
	if l.Runs(NewBox([]int64{5, 5}, []int64{9, 9})) != nil {
		t.Error("fully-outside box should have no runs")
	}
}

func TestRunCount(t *testing.T) {
	l := RowMajor(8, 8)
	if l.RunCount(NewBox([]int64{0, 0}, []int64{4, 4})) != 4 {
		t.Error("RunCount mismatch")
	}
}

// checkRunsCoverBox verifies that runs exactly cover the box: sorted,
// non-overlapping, total length == box size, and every covered offset
// maps back to a coordinate inside the box.
func checkRunsCoverBox(t *testing.T, l *Layout, box Box) {
	t.Helper()
	box = box.Clip(l.Dims())
	runs := l.Runs(box)
	var total int64
	for k, r := range runs {
		total += r.Len
		if k > 0 && runs[k-1].Off+runs[k-1].Len >= r.Off {
			t.Fatalf("%s: runs overlap or not maximal: %v", l, runs)
		}
		for off := r.Off; off < r.Off+r.Len; off++ {
			if !box.Contains(l.Coord(off)) {
				t.Fatalf("%s: offset %d outside box %v", l, off, box)
			}
		}
	}
	if total != box.Size() {
		t.Fatalf("%s: runs cover %d elements, box has %d", l, total, box.Size())
	}
}

func TestRunsCoverExactly(t *testing.T) {
	boxes := []Box{
		NewBox([]int64{0, 0}, []int64{3, 3}),
		NewBox([]int64{1, 2}, []int64{5, 7}),
		NewBox([]int64{0, 0}, []int64{7, 1}),
		NewBox([]int64{6, 0}, []int64{7, 7}),
		NewBox([]int64{0, 0}, []int64{7, 7}),
	}
	for _, l := range allLayouts(7, 7) {
		for _, b := range boxes {
			checkRunsCoverBox(t, l, b)
		}
	}
}

func TestPropertyRunsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := int64(3+rng.Intn(6)), int64(3+rng.Intn(6))
		ls := allLayouts(n, m)
		l := ls[rng.Intn(len(ls))]
		lo := []int64{int64(rng.Intn(int(n))), int64(rng.Intn(int(m)))}
		hi := []int64{lo[0] + int64(1+rng.Intn(int(n))), lo[1] + int64(1+rng.Intn(int(m)))}
		box := NewBox(lo, hi).Clip(l.Dims())
		if box.Empty() {
			return true
		}
		// Brute force: collect offsets, sort, merge.
		var offs []int64
		for i := box.Lo[0]; i < box.Hi[0]; i++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				offs = append(offs, l.Offset([]int64{i, j}))
			}
		}
		sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
		var want []Run
		for _, o := range offs {
			if k := len(want); k > 0 && want[k-1].Off+want[k-1].Len == o {
				want[k-1].Len++
			} else {
				want = append(want, Run{Off: o, Len: 1})
			}
		}
		got := l.Runs(box)
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if got[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermSegments3D(t *testing.T) {
	l := NewPermutation([]int64{4, 4, 4}, []int{0, 1, 2})
	checkRunsCoverBox(t, l, NewBox([]int64{1, 1, 1}, []int64{3, 3, 3}))
	// Full cube is one run.
	full := l.Runs(NewBox([]int64{0, 0, 0}, []int64{4, 4, 4}))
	if len(full) != 1 || full[0].Len != 64 {
		t.Errorf("full cube runs = %v", full)
	}
}
