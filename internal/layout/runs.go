package layout

import (
	"fmt"
	"sort"
)

// Box is a half-open rectangular region [Lo[d], Hi[d]) of array
// coordinates — the shape of a data tile.
type Box struct {
	Lo, Hi []int64
}

// NewBox validates and returns a box.
func NewBox(lo, hi []int64) Box {
	if len(lo) != len(hi) {
		panic("layout: box rank mismatch")
	}
	for d := range lo {
		if hi[d] < lo[d] {
			panic(fmt.Sprintf("layout: box dimension %d reversed: [%d,%d)", d, lo[d], hi[d]))
		}
	}
	return Box{Lo: cloneI64(lo), Hi: cloneI64(hi)}
}

// Rank returns the box rank.
func (b Box) Rank() int { return len(b.Lo) }

// Size returns the number of elements in the box.
func (b Box) Size() int64 {
	n := int64(1)
	for d := range b.Lo {
		n *= b.Hi[d] - b.Lo[d]
	}
	return n
}

// Empty reports whether the box contains no elements.
func (b Box) Empty() bool { return b.Size() == 0 }

// Clip intersects the box with the array extents. A box already inside
// the extents is returned as-is (no copy): the tile engine's cached-GET
// path clips every request, and the common case — a well-formed tile —
// must not allocate. Callers treat boxes as immutable either way.
func (b Box) Clip(dims []int64) Box {
	inside := true
	for d := range b.Lo {
		if b.Lo[d] < 0 || b.Hi[d] > dims[d] || b.Hi[d] < b.Lo[d] {
			inside = false
			break
		}
	}
	if inside {
		return b
	}
	lo := make([]int64, len(b.Lo))
	hi := make([]int64, len(b.Hi))
	for d := range lo {
		lo[d] = maxI64(b.Lo[d], 0)
		hi[d] = minI64(b.Hi[d], dims[d])
		if hi[d] < lo[d] {
			hi[d] = lo[d]
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Overlaps reports whether the boxes share at least one element.
// Boxes of different rank never overlap; empty boxes overlap nothing.
func (b Box) Overlaps(o Box) bool {
	if b.Rank() != o.Rank() || b.Empty() || o.Empty() {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] >= o.Hi[d] || o.Lo[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

// Contains reports whether coordinates c lie inside the box.
func (b Box) Contains(c []int64) bool {
	for d := range c {
		if c[d] < b.Lo[d] || c[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

func (b Box) String() string { return fmt.Sprintf("[%v,%v)", b.Lo, b.Hi) }

// Run is a maximal contiguous file segment, in elements.
type Run struct {
	Off, Len int64
}

// Runs enumerates the maximal contiguous file segments that together
// cover exactly the elements of box under the layout, sorted by file
// offset. The number of runs is the paper's central I/O metric: one
// I/O request per run (possibly split further by the per-call byte cap
// and by striping, which the ooc and pfs packages model).
func (l *Layout) Runs(box Box) []Run {
	box = box.Clip(l.dims)
	if box.Empty() {
		return nil
	}
	switch l.kind {
	case Permutation:
		return mergeRuns(l.permSegments(box))
	case Diagonal2D:
		return mergeRuns(l.diagSegments(box, true))
	case AntiDiagonal2D:
		return mergeRuns(l.diagSegments(box, false))
	case Blocked2D:
		return mergeRuns(l.blockSegments(box))
	case General2D:
		return mergeRuns(l.genericSegments(box))
	default:
		panic("layout: unknown kind")
	}
}

// RunCount returns len(Runs(box)) without retaining the slice.
func (l *Layout) RunCount(box Box) int64 { return int64(len(l.Runs(box))) }

// permSegments yields one segment per "row" of the box along the
// fastest dimension of the permutation order.
func (l *Layout) permSegments(box Box) []Run {
	fast := l.perm[len(l.perm)-1]
	slow := l.perm[:len(l.perm)-1]
	segLen := box.Hi[fast] - box.Lo[fast]
	// Iterate the slow dims in perm-lexicographic order so segments come
	// out already sorted by offset.
	cur := make([]int64, l.Rank())
	copy(cur, box.Lo)
	var segs []Run
	for {
		cur[fast] = box.Lo[fast]
		segs = append(segs, Run{Off: l.Offset(cur), Len: segLen})
		// Advance the slow dims odometer-style, fastest slow dim last.
		k := len(slow) - 1
		for ; k >= 0; k-- {
			d := slow[k]
			cur[d]++
			if cur[d] < box.Hi[d] {
				break
			}
			cur[d] = box.Lo[d]
		}
		if k < 0 {
			return segs
		}
	}
}

// diagSegments yields one segment per (anti-)diagonal intersecting the
// box. For diag=true the family is i-j=c; otherwise i+j=s.
func (l *Layout) diagSegments(box Box, diag bool) []Run {
	r0, r1 := box.Lo[0], box.Hi[0]
	c0, c1 := box.Lo[1], box.Hi[1]
	var segs []Run
	if diag {
		// d = i - j ranges over [r0-(c1-1), r1-1-c0].
		for d := r0 - (c1 - 1); d <= r1-1-c0; d++ {
			iLo := maxI64(r0, d+c0)
			iHi := minI64(r1-1, d+c1-1)
			if iHi < iLo {
				continue
			}
			segs = append(segs, Run{Off: l.Offset([]int64{iLo, iLo - d}), Len: iHi - iLo + 1})
		}
	} else {
		for s := r0 + c0; s <= (r1-1)+(c1-1); s++ {
			iLo := maxI64(r0, s-(c1-1))
			iHi := minI64(r1-1, s-c0)
			if iHi < iLo {
				continue
			}
			segs = append(segs, Run{Off: l.Offset([]int64{iLo, s - iLo}), Len: iHi - iLo + 1})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].Off < segs[b].Off })
	return segs
}

// blockSegments yields row segments within each block the box overlaps.
func (l *Layout) blockSegments(box Box) []Run {
	b1, b2 := l.block[0], l.block[1]
	var segs []Run
	for bi := box.Lo[0] / b1; bi*b1 < box.Hi[0]; bi++ {
		for bj := box.Lo[1] / b2; bj*b2 < box.Hi[1]; bj++ {
			rLo := maxI64(box.Lo[0], bi*b1)
			rHi := minI64(box.Hi[0], (bi+1)*b1)
			cLo := maxI64(box.Lo[1], bj*b2)
			cHi := minI64(box.Hi[1], (bj+1)*b2)
			for i := rLo; i < rHi; i++ {
				segs = append(segs, Run{Off: l.Offset([]int64{i, cLo}), Len: cHi - cLo})
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].Off < segs[b].Off })
	return segs
}

// genericSegments enumerates every element (table-backed layouts only).
func (l *Layout) genericSegments(box Box) []Run {
	offs := make([]int64, 0, box.Size())
	cur := make([]int64, l.Rank())
	copy(cur, box.Lo)
	for {
		offs = append(offs, l.Offset(cur))
		k := l.Rank() - 1
		for ; k >= 0; k-- {
			cur[k]++
			if cur[k] < box.Hi[k] {
				break
			}
			cur[k] = box.Lo[k]
		}
		if k < 0 {
			break
		}
	}
	sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
	segs := make([]Run, 0, len(offs))
	for _, o := range offs {
		if n := len(segs); n > 0 && segs[n-1].Off+segs[n-1].Len == o {
			segs[n-1].Len++
		} else {
			segs = append(segs, Run{Off: o, Len: 1})
		}
	}
	return segs
}

// mergeRuns coalesces adjacent segments (sorted by offset) into maximal
// runs.
func mergeRuns(segs []Run) []Run {
	if len(segs) == 0 {
		return nil
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if last.Off+last.Len == s.Off {
			last.Len += s.Len
		} else {
			out = append(out, s)
		}
	}
	return out
}
