package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use standalone; Registry.Counter hands out named shared
// instances.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float metric. The zero value is ready.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets (upper-bound
// inclusive, Prometheus-style, with an implicit +Inf bucket). Observe
// is lock-free and allocation-free.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf bucket is counts[len(bounds)]
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given sorted upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns n upper bounds start, start*factor, ... — the
// usual shape for latencies and request sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and their (non-cumulative) counts;
// the final pair is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry is a named collection of metrics with get-or-create
// semantics: asking for an existing name returns the shared instance,
// so independent components (or repeated runs) accumulate into the
// same series. Exposition is sorted by name for stable output.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: map[string]*metric{}} }

func (r *Registry) get(name, help string, k metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, kindGauge).g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.get(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// sorted returns the metrics ordered by name.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// baseName strips a label suffix from a metric name: counters and
// gauges may be registered under labeled names like
// `ooc_shard_hits_total{shard="0"}`, which belong to the family
// `ooc_shard_hits_total`. (Histograms render their own labeled sample
// lines and must be registered under plain names.)
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Metrics registered under labeled
// names (see baseName) share one HELP/TYPE header per family, emitted
// once before the family's first sample.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	headered := map[string]bool{}
	for _, m := range r.sorted() {
		typ := [...]string{"counter", "gauge", "histogram"}[m.kind]
		if fam := baseName(m.name); !headered[fam] {
			headered[fam] = true
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", m.name, strconv.FormatFloat(m.g.Value(), 'g', -1, 64))
		case kindHistogram:
			bounds, counts := m.h.Buckets()
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum)
			}
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, strconv.FormatFloat(m.h.Sum(), 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	return bw.Flush()
}

// jsonBucket is one histogram bucket in the JSON exposition.
type jsonBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// jsonMetric is one metric in the JSON exposition.
type jsonMetric struct {
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Value   *float64     `json:"value,omitempty"`
	Count   *int64       `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// WriteJSON writes the registry as a single JSON object keyed by
// metric name (keys sorted — encoding/json sorts map keys — so the
// output is stable for golden tests).
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]jsonMetric{}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			v := float64(m.c.Value())
			out[m.name] = jsonMetric{Type: "counter", Help: m.help, Value: &v}
		case kindGauge:
			v := m.g.Value()
			out[m.name] = jsonMetric{Type: "gauge", Help: m.help, Value: &v}
		case kindHistogram:
			bounds, counts := m.h.Buckets()
			jb := make([]jsonBucket, len(bounds))
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				jb[i] = jsonBucket{Le: formatBound(b), Count: cum}
			}
			n, s := m.h.Count(), m.h.Sum()
			out[m.name] = jsonMetric{Type: "histogram", Help: m.help, Count: &n, Sum: &s, Buckets: jb}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
