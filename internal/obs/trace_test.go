package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindEviction, Start: int64(i)})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first: the last 4 of the 10 emitted.
	for i, e := range evs {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("event %d: Start = %d, want %d", i, e.Start, want)
		}
	}
}

func TestTraceUnderCapacity(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Start: int64(i)})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Start != int64(i) {
			t.Errorf("event %d: Start = %d, want %d", i, e.Start, i)
		}
	}
}

// TestTraceConcurrentEmit exercises the ring under the race detector:
// many goroutines emitting while another snapshots.
func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(64)
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
				_ = tr.Dropped()
			}
		}
	}()
	var emitters sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Event{Kind: KindTileFetch, Track: int32(g), Start: int64(i), Bytes: 8})
			}
		}(g)
	}
	emitters.Wait()
	close(stop)
	wg.Wait()
	if got := tr.Total(); got != goroutines*each {
		t.Fatalf("Total = %d, want %d", got, goroutines*each)
	}
	if got := len(tr.Events()); got != 64 {
		t.Fatalf("retained %d events, want 64", got)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(Event{Kind: KindTileFetch, Name: "A", Start: 1000, Dur: 500, Bytes: 4096})
	tr.Emit(Event{Kind: KindPrefetchIssue, Name: "B", Start: 2000})
	tr.Emit(Event{Kind: KindPFSRequest, Name: "C", Track: 3, Start: 0, Dur: 8_000_000, Bytes: 65536})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 process-name metadata records + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents has %d entries, want 5", len(doc.TraceEvents))
	}
	body := buf.String()
	for _, want := range []string{`"tile-fetch A"`, `"prefetch-issue B"`, `"pfs-request C"`, `"ph":"X"`, `"ph":"i"`} {
		if !strings.Contains(body, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
	// The PFS event must sit in the simulated-clock process.
	pfsEntry := doc.TraceEvents[4]
	if pid, _ := pfsEntry["pid"].(float64); int(pid) != chromePidPFS {
		t.Errorf("PFS event pid = %v, want %d", pfsEntry["pid"], chromePidPFS)
	}
}

// TestEmitPathAllocations pins the acceptance criterion: the emit
// paths allocate nothing, so instrumentation attached or not never
// adds GC pressure to the engine's hot loops.
func TestEmitPathAllocations(t *testing.T) {
	tr := NewTrace(128)
	ev := Event{Kind: KindTileFetch, Name: "A", Start: 1, Dur: 2, Bytes: 3}
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(ev) }); n != 0 {
		t.Errorf("Trace.Emit allocates %.1f per call, want 0", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f per call, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per call, want 0", n)
	}
	h := NewHistogram(ExpBuckets(1, 2, 10))
	if n := testing.AllocsPerRun(1000, func() { h.Observe(7) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per call, want 0", n)
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := NewTrace(1 << 12)
	ev := Event{Kind: KindTileFetch, Name: "A", Start: 1, Dur: 2, Bytes: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBuckets(1e-6, 4, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func ExampleTrace_WriteChrome() {
	tr := NewTrace(4)
	tr.Emit(Event{Kind: KindWriteback, Name: "B", Start: 5000, Dur: 1000, Bytes: 512})
	var buf bytes.Buffer
	_ = tr.WriteChrome(&buf)
	fmt.Println(strings.Contains(buf.String(), `"writeback B"`))
	// Output: true
}
