package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultTraceCap is the ring capacity used when NewTrace is given a
// non-positive capacity: enough for the bench suite's busiest kernel
// without unbounded growth on long runs.
const DefaultTraceCap = 1 << 18

// Trace is a bounded ring buffer of events. Concurrent Emit calls are
// safe; once the ring is full the oldest events are overwritten (the
// usual flight-recorder behaviour — the most recent window survives).
type Trace struct {
	epoch time.Time

	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever emitted
}

// NewTrace returns a trace retaining at most capacity events
// (DefaultTraceCap when capacity <= 0). The wall-clock epoch for
// Now/Stamp is fixed at creation.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{epoch: time.Now(), buf: make([]Event, 0, capacity)}
}

// Now returns the current wall-clock time as nanoseconds since the
// trace epoch — the Start value for an event being emitted now.
func (t *Trace) Now() int64 { return time.Since(t.epoch).Nanoseconds() }

// Stamp converts an absolute time (e.g. a span's recorded start) to
// nanoseconds since the trace epoch.
func (t *Trace) Stamp(tm time.Time) int64 { return tm.Sub(t.epoch).Nanoseconds() }

// Emit appends the event, overwriting the oldest once full. It never
// allocates: the ring storage is laid down once in NewTrace.
func (t *Trace) Emit(e Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = t.buf[:len(t.buf)+1]
	}
	t.buf[t.n%uint64(cap(t.buf))] = e
	t.n++
	t.mu.Unlock()
}

// Total returns the number of events ever emitted.
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by wraparound.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		copy(out, t.buf)
		return out
	}
	head := int(t.n % uint64(cap(t.buf))) // index of the oldest event
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// Chrome trace_event pid values: one process per clock domain so
// wall-clock engine activity and virtual-time PFS activity never share
// a timeline.
const (
	chromePidEngine = 1
	chromePidPFS    = 2
)

func chromePid(k Kind) int {
	if k == KindPFSRequest {
		return chromePidPFS
	}
	return chromePidEngine
}

// WriteChrome writes the retained events in the Chrome trace_event
// JSON array format understood by chrome://tracing and Perfetto.
// Spans become complete ("X") events, zero-duration events become
// instants ("i"); timestamps are microseconds as the format requires.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	// Name the two processes so the viewer labels the clock domains.
	fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":"tile engine (wall clock)"}},`+"\n", chromePidEngine)
	fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":"pfs (simulated clock)"}}`, chromePidPFS)
	for _, e := range t.Events() {
		if _, err := bw.WriteString(",\n"); err != nil {
			return err
		}
		ts := float64(e.Start) / 1e3 // ns -> µs
		if e.Dur > 0 {
			fmt.Fprintf(bw,
				`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%q,"cat":%q,"args":{"bytes":%d}}`,
				chromePid(e.Kind), e.Track, ts, float64(e.Dur)/1e3, e.Kind.String()+" "+e.Name, e.Kind.String(), e.Bytes)
		} else {
			fmt.Fprintf(bw,
				`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f,"name":%q,"cat":%q,"args":{"bytes":%d}}`,
				chromePid(e.Kind), e.Track, ts, e.Kind.String()+" "+e.Name, e.Kind.String(), e.Bytes)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
