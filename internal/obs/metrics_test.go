package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "ignored on reuse")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", b.Value())
	}
	h1 := r.Histogram("lat", "", ExpBuckets(1, 10, 3))
	h2 := r.Histogram("lat", "", nil)
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name with a different type did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want 3 finite + Inf", bounds)
	}
	// 0.5 and 1 fall in le=1 (upper-bound inclusive), 5 in le=10,
	// 50 in le=100, 500 and 5000 in +Inf.
	want := []int64{2, 1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got := h.Sum(); got != 5556.5 {
		t.Errorf("Sum = %g, want 5556.5", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Fatalf("Sum = %g, want 8000", h.Sum())
	}
}

// golden registry shared by both exposition tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ooc_io_read_calls_total", "backend read calls").Add(42)
	r.Gauge("sim_makespan_seconds", "simulated makespan").Set(1.25)
	h := r.Histogram("ooc_request_elems", "elements per I/O call", []float64{8, 64})
	h.Observe(4)
	h.Observe(4)
	h.Observe(32)
	h.Observe(1000)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ooc_io_read_calls_total backend read calls
# TYPE ooc_io_read_calls_total counter
ooc_io_read_calls_total 42
# HELP ooc_request_elems elements per I/O call
# TYPE ooc_request_elems histogram
ooc_request_elems_bucket{le="8"} 2
ooc_request_elems_bucket{le="64"} 3
ooc_request_elems_bucket{le="+Inf"} 4
ooc_request_elems_sum 1040
ooc_request_elems_count 4
# HELP sim_makespan_seconds simulated makespan
# TYPE sim_makespan_seconds gauge
sim_makespan_seconds 1.25
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "ooc_io_read_calls_total": {
    "type": "counter",
    "help": "backend read calls",
    "value": 42
  },
  "ooc_request_elems": {
    "type": "histogram",
    "help": "elements per I/O call",
    "count": 4,
    "sum": 1040,
    "buckets": [
      {
        "le": "8",
        "count": 2
      },
      {
        "le": "64",
        "count": 3
      },
      {
        "le": "+Inf",
        "count": 4
      }
    ]
  },
  "sim_makespan_seconds": {
    "type": "gauge",
    "help": "simulated makespan",
    "value": 1.25
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And it must round-trip as JSON.
	var m map[string]jsonMetric
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("exposition is not valid JSON: %v", err)
	}
}

func TestSinkNilSafety(t *testing.T) {
	var s *Sink
	if s.TraceOf() != nil || s.MetricsOf() != nil {
		t.Fatal("nil sink must expose nil trace and metrics")
	}
	s = &Sink{}
	if s.TraceOf() != nil || s.MetricsOf() != nil {
		t.Fatal("empty sink must expose nil trace and metrics")
	}
}

// TestWritePrometheusLabeled pins the labeled exposition: counters
// registered under `family{label="v"}` names share exactly one
// HELP/TYPE header per family, emitted before the family's first
// sample, and each label value renders its own sample line. This is
// the contract the per-shard ooc_shard_* counters rely on.
func TestWritePrometheusLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ooc_shard_hits_total{shard="0"}`, "tile cache hits by shard").Add(3)
	r.Counter(`ooc_shard_hits_total{shard="1"}`, "tile cache hits by shard").Add(5)
	r.Counter("ooc_io_read_calls_total", "backend read calls").Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ooc_io_read_calls_total backend read calls
# TYPE ooc_io_read_calls_total counter
ooc_io_read_calls_total 1
# HELP ooc_shard_hits_total tile cache hits by shard
# TYPE ooc_shard_hits_total counter
ooc_shard_hits_total{shard="0"} 3
ooc_shard_hits_total{shard="1"} 5
`
	if got := buf.String(); got != want {
		t.Errorf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The JSON rendering keys each series by its full labeled name.
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]jsonMetric
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("labeled JSON exposition invalid: %v", err)
	}
	for _, k := range []string{`ooc_shard_hits_total{shard="0"}`, `ooc_shard_hits_total{shard="1"}`} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON exposition missing labeled series %q", k)
		}
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		`ooc_shard_hits_total{shard="7"}`: "ooc_shard_hits_total",
		"ooc_io_read_calls_total":         "ooc_io_read_calls_total",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
