// Package obs is the observability layer for the out-of-core stack:
// a bounded ring buffer of typed trace events (exportable as Chrome
// trace_event JSON for chrome://tracing / Perfetto) and a lightweight
// metrics registry (counters, gauges, histograms) with JSON and
// Prometheus-text exposition.
//
// The design constraint is that instrumentation must be free when
// nobody is looking: every instrumented component guards its emit
// sites with a nil check on the attached sink, and the emit paths
// themselves (Trace.Emit, Counter.Add, Gauge.Set, Histogram.Observe)
// perform zero heap allocations — verified by TestEmitPathAllocations.
package obs

// Kind identifies the typed trace events the stack emits.
type Kind uint8

// The event vocabulary. Engine and compute events carry wall-clock
// timestamps; PFS events carry the discrete-event simulator's virtual
// time. WriteChrome separates the two domains into distinct trace
// processes so the clocks never mix on one track.
const (
	// KindTileFetch is a synchronous backend read of a tile on an
	// engine cache miss (span).
	KindTileFetch Kind = iota
	// KindCompute is the statement-iteration work over one pinned tile
	// set (span).
	KindCompute
	// KindWriteback is a dirty tile flushed to the backend (span).
	KindWriteback
	// KindPrefetchIssue is an asynchronous tile read being dispatched
	// to the engine's worker pool (instant).
	KindPrefetchIssue
	// KindPrefetchDone is the completion of an asynchronous tile read;
	// its duration is the backend read time that overlapped compute
	// (span).
	KindPrefetchDone
	// KindEviction is a cache entry dropped by capacity pressure
	// (instant).
	KindEviction
	// KindPFSRequest is one stripe-level subrequest serviced by a
	// simulated PFS I/O node, in virtual time (span; Track = node).
	KindPFSRequest

	numKinds
)

var kindNames = [numKinds]string{
	KindTileFetch:     "tile-fetch",
	KindCompute:       "compute",
	KindWriteback:     "writeback",
	KindPrefetchIssue: "prefetch-issue",
	KindPrefetchDone:  "prefetch-done",
	KindEviction:      "eviction",
	KindPFSRequest:    "pfs-request",
}

// String names the kind for exports and tests.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. It is a flat value type — emitting one
// copies a few words and never allocates.
type Event struct {
	Kind  Kind
	Track int32  // lane within the domain: PFS I/O node index (0 otherwise)
	Name  string // array / file the event concerns
	Start int64  // nanoseconds since the trace epoch (PFS: virtual ns)
	Dur   int64  // span duration in nanoseconds; 0 = instant event
	Bytes int64  // payload moved, in bytes (0 when not applicable)
}

// Sink bundles the two optional observation targets a component can be
// handed. Either field may be nil; a nil *Sink disables everything.
type Sink struct {
	Trace   *Trace
	Metrics *Registry
}

// TraceOf returns s.Trace, tolerating a nil sink.
func (s *Sink) TraceOf() *Trace {
	if s == nil {
		return nil
	}
	return s.Trace
}

// MetricsOf returns s.Metrics, tolerating a nil sink.
func (s *Sink) MetricsOf() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}
