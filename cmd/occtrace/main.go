// Command occtrace executes one kernel version out-of-core and dumps
// its I/O behaviour: per-array call and byte counts, and optionally the
// head of the raw request trace.
//
// Usage:
//
//	occtrace -kernel trans -version c-opt [-n2 64] [-head 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"outcore/internal/codegen"
	"outcore/internal/exp"
	"outcore/internal/ooc"
	"outcore/internal/suite"
)

func main() {
	kernel := flag.String("kernel", "", "kernel name")
	version := flag.String("version", "c-opt", "program version")
	n2 := flag.Int64("n2", 128, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 16, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 6, "extent of 4-D array dimensions")
	memFrac := flag.Int64("memfrac", 128, "memory budget = data size / memfrac")
	maxCall := flag.Int64("maxcall", 8192, "per-call element cap (0 = unlimited)")
	head := flag.Int("head", 0, "print the first N trace entries")
	hist := flag.Bool("hist", false, "print the request-size histogram")
	flag.Parse()

	k, ok := suite.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "occtrace: -kernel: unknown kernel %q (valid: %s)\n",
			*kernel, strings.Join(suite.KernelNames(), ", "))
		os.Exit(2)
	}
	ver, ok := suite.ParseVersion(*version)
	if !ok {
		fmt.Fprintf(os.Stderr, "occtrace: -version: unknown version %q (valid: %s)\n",
			*version, strings.Join(suite.VersionNames(), ", "))
		os.Exit(2)
	}
	prog := k.Build(suite.Config{N2: *n2, N3: *n3, N4: *n4})
	plan, err := suite.PlanFor(prog, ver)
	fail(err)

	d, err := codegen.SetupDisk(prog, plan, *maxCall, nil)
	fail(err)
	d.Record = *head > 0 || *hist
	budget := suite.MemBudget(prog, *memFrac)
	mem := ooc.NewMemory(budget)
	stats, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
		Strategy:  suite.StrategyFor(ver),
		MemBudget: budget,
		DryRun:    true,
	})
	fail(err)

	fmt.Printf("%s/%s  n2=%d  budget=%d elems  iterations=%d  tiles=%d\n",
		k.Name, *version, *n2, budget, stats.Iterations, stats.Tiles)
	fmt.Printf("total: %d calls (%d read, %d write), %d bytes\n\n",
		d.Stats.Calls(), d.Stats.ReadCalls, d.Stats.WriteCalls, d.Stats.Bytes())
	names := make([]string, 0, len(d.PerFile))
	for name := range d.PerFile {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %10s %10s %14s %14s\n", "array", "rd-calls", "wr-calls", "elems-read", "elems-written")
	for _, name := range names {
		s := d.PerFile[name]
		if s.Calls() == 0 {
			continue
		}
		fmt.Printf("%-10s %10d %10d %14d %14d\n", name, s.ReadCalls, s.WriteCalls, s.ElemsRead, s.ElemsWritten)
	}
	if *hist {
		h := &exp.SizeHistogram{}
		for _, r := range d.Trace {
			h.Add(r.Len)
		}
		fmt.Println("\nrequest-size distribution (elements):")
		fmt.Print(h.Render())
	}
	if *head > 0 {
		fmt.Printf("\nfirst %d requests:\n", *head)
		for i, r := range d.Trace {
			if i >= *head {
				break
			}
			op := "read "
			if r.Write {
				op = "write"
			}
			fmt.Printf("  %s %-8s off=%-8d len=%d\n", op, r.Array, r.Off, r.Len)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occtrace:", err)
		os.Exit(1)
	}
}
