// Command occviz visualizes a simulated run: per-I/O-node utilization
// and the per-processor completion-time spread, as ASCII bar charts.
// It makes the contention stories behind Tables 2 and 3 visible: a
// call-heavy version shows hot, imbalanced I/O nodes; an optimized one
// shows short, even bars.
//
// Usage:
//
//	occviz -kernel mat -version col -procs 16 [-n2 128]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"outcore/internal/exp"
	"outcore/internal/sim"
	"outcore/internal/suite"
)

func main() {
	kernel := flag.String("kernel", "mat", "kernel name")
	version := flag.String("version", "c-opt", "program version")
	procs := flag.Int("procs", 16, "processors")
	n2 := flag.Int64("n2", 128, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 24, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 8, "extent of 4-D array dimensions")
	ionodes := flag.Int("ionodes", 64, "I/O nodes")
	width := flag.Int("width", 50, "bar width in characters")
	flag.Parse()

	k, ok := suite.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "occviz: -kernel: unknown kernel %q (valid: %s)\n",
			*kernel, strings.Join(suite.KernelNames(), ", "))
		os.Exit(2)
	}
	ver, ok := suite.ParseVersion(*version)
	if !ok {
		fmt.Fprintf(os.Stderr, "occviz: -version: unknown version %q (valid: %s)\n",
			*version, strings.Join(suite.VersionNames(), ", "))
		os.Exit(2)
	}
	m, res, err := sim.RunDetailed(sim.Setup{
		Kernel:  k,
		Cfg:     suite.Config{N2: *n2, N3: *n3, N4: *n4},
		Version: ver,
		Procs:   *procs,
		PFS:     exp.ScaledPFS(*n2, *ionodes),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "occviz:", err)
		os.Exit(1)
	}

	fmt.Printf("%s/%s on %d processors, %d I/O nodes\n", k.Name, *version, *procs, *ionodes)
	fmt.Printf("simulated time %.2fs, %d I/O calls, %.1f MB moved\n\n",
		m.Seconds, m.Calls, float64(m.Elems*8)/1e6)

	fmt.Println("I/O node utilization (busy seconds / makespan):")
	maxBusy := res.MaxNodeBusy()
	for node, busy := range res.NodeBusy {
		fmt.Printf("  node %3d %s %6.1fs (%4.0f%%)\n",
			node, bar(busy, maxBusy, *width), busy, 100*busy/res.Makespan)
	}

	fmt.Println("\nprocessor completion times:")
	for p, tEnd := range res.PerProc {
		fmt.Printf("  proc %3d %s %6.1fs\n", p, bar(tEnd, res.Makespan, *width), tEnd)
	}
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return strings.Repeat(" ", width)
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
