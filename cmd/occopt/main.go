// Command occopt shows the optimizer's decisions for a benchmark
// kernel (or the paper's Section-3.1 worked example): the chosen file
// layouts, loop transformation matrices, per-reference locality, and
// the tiling specification of every nest.
//
// Usage:
//
//	occopt -kernel mxm [-version c-opt] [-n2 64] [-n3 16] [-n4 6]
//	occopt -demo
package main

import (
	"flag"
	"fmt"
	"os"

	"outcore/internal/codegen"
	"outcore/internal/ir"
	"outcore/internal/suite"
)

func main() {
	kernel := flag.String("kernel", "", "kernel name (mat, mxm, adi, vpenta, btrix, emit, syr2k, htribk, gfunp, trans)")
	version := flag.String("version", "c-opt", "version: col, row, l-opt, d-opt, c-opt, h-opt")
	demo := flag.Bool("demo", false, "run the paper's Section-3.1 worked example instead of a kernel")
	n2 := flag.Int64("n2", 64, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 16, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 6, "extent of 4-D array dimensions")
	memFrac := flag.Int64("memfrac", 128, "memory budget = data size / memfrac")
	code := flag.Bool("code", false, "print the generated tiled pseudo-code per nest")
	flag.Parse()

	var prog *ir.Program
	switch {
	case *demo:
		prog = workedExample(*n2)
	case *kernel != "":
		k, ok := suite.ByName(*kernel)
		if !ok {
			fmt.Fprintf(os.Stderr, "occopt: unknown kernel %q\n", *kernel)
			os.Exit(2)
		}
		prog = k.Build(suite.Config{N2: *n2, N3: *n3, N4: *n4})
	default:
		flag.Usage()
		os.Exit(2)
	}

	plan, err := suite.PlanFor(prog, suite.Version(*version))
	if err != nil {
		fmt.Fprintln(os.Stderr, "occopt:", err)
		os.Exit(1)
	}

	fmt.Println("=== input program ===")
	fmt.Print(prog)
	fmt.Printf("\n=== %s plan ===\n", *version)
	fmt.Print(plan)
	if len(plan.Notes) > 0 {
		fmt.Println("derivation:")
		for _, note := range plan.Notes {
			fmt.Println(" ", note)
		}
	}

	fmt.Println("\n=== per-reference locality ===")
	for _, rep := range plan.Report(prog, nil) {
		fmt.Printf("  nest %d  %-16s %s\n", rep.Nest.ID, rep.Ref, rep.Locality)
	}

	fmt.Println("\n=== tiling ===")
	budget := suite.MemBudget(prog, *memFrac)
	fmt.Printf("memory budget: %d elements (1/%d of %d)\n", budget, *memFrac, suite.TotalElems(prog))
	for _, n := range prog.Nests {
		sched, err := codegen.Build(n, plan.Nests[n], codegen.Options{
			Strategy:  suite.StrategyFor(suite.Version(*version)),
			MemBudget: budget,
		})
		if err != nil {
			fmt.Printf("  nest %d: %v\n", n.ID, err)
			continue
		}
		fmt.Printf("  nest %d: %s\n", n.ID, sched.Spec)
		if *code {
			fmt.Println()
			fmt.Print(sched)
		}
	}
}

// workedExample builds the Section-3.1 fragment.
func workedExample(n int64) *ir.Program {
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	return &ir.Program{
		Name:   "worked-example",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "add1", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "add2", ir.AddConst(2)),
			}},
		},
	}
}
