// Command occhaos runs seeded deterministic-simulation episodes
// against the out-of-core stack (internal/dst): each episode drives
// the tile engine through a storm of injected storage faults and
// power cuts, then checks that no acknowledged write was lost or
// torn and no read ever returned stale data.
//
// The default run sweeps a fixed block of seeds (reproducible in CI);
// -random adds one wall-clock-derived seed on top, printed so a
// failure is never lost. On any violation occhaos prints the failing
// episode's verdict, its violations, and the exact single-seed
// reproducer command, then exits 1:
//
//	occhaos                         # 50 episodes, seeds 0..49
//	occhaos -episodes 200 -random   # wider sweep plus one fresh seed
//	occhaos -seed 1337 -episodes 1 -v   # replay one seed, full trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"outcore/internal/dst"
	"outcore/internal/faultfs"
	"outcore/internal/server"
)

func main() {
	storm := faultfs.StormProfile()
	episodes := flag.Int("episodes", 50, "number of seeded episodes to run")
	seed := flag.Int64("seed", 0, "first seed; episodes use seed, seed+1, ...")
	random := flag.Bool("random", false, "append one wall-clock-derived seed (printed)")
	ops := flag.Int("ops", 300, "scheduler steps per episode")
	clients := flag.Int("clients", 4, "logical clients interleaved per episode")
	workers := flag.Int("workers", 0, "engine workers (0 = fully replayable schedule)")
	putFrac := flag.Float64("put-frac", 0.4, "fraction of client ops that are PUTs")
	flushEvery := flag.Int("flush-every", 20, "~one flush per this many steps (<0 disables)")
	crashEvery := flag.Int("crash-every", 50, "~one power cut per this many steps (<0 disables)")
	shards := flag.Int("shards", 1, "run episodes against a sharded tile plane (1 = single engine); scheduled crashes then mix power cuts with single-shard crashes")
	wal := flag.Bool("wal", false, "run WAL-backed episodes: writes append to per-shard logs, crashes land mid-commit/mid-compaction, and every reboot replays the surviving log tail")
	compress := flag.Bool("compress", false, "with -wal: compress log record payloads (codec frames), so crash recovery replays through the compressed format")
	readErr := flag.Float64("read-err", storm.ReadErr, "probability a backend read fails EIO")
	writeErr := flag.Float64("write-err", storm.WriteErr, "probability a backend write fails EIO")
	noSpace := flag.Float64("nospace", storm.WriteNoSpace, "probability a backend write fails ENOSPC")
	torn := flag.Float64("torn", storm.TornWrite, "probability a backend write tears (strict prefix applied)")
	syncErr := flag.Float64("sync-err", storm.SyncErr, "probability a sync fails (writes stay volatile)")
	syncDrop := flag.Float64("sync-drop", 0, "probability a sync LIES (reports success, persists nothing) — episodes are expected to fail")
	clusterMode := flag.Bool("cluster", false, "run CLUSTER episodes instead: a router + -nodes storage nodes with -replicas copies per tile, node kills, partitions, hinted handoff and read-repair under test")
	operatorMode := flag.Bool("operators", false, "run OPERATOR episodes instead: batched PUTs and resumable streaming scans through the router, with scans interrupted by node crashes (cursor resume must never skip or re-deliver) and batch acks checked across whole-cluster power cuts")
	tenantMode := flag.Bool("tenants", false, "run TENANT episodes instead: a weighted point tenant and a scan tenant share a faulted cluster; every request must get a clean verdict (no DRR wedge, no hung admission), and no queue slot may leak across node crashes")
	nodes := flag.Int("nodes", 3, "with -cluster: storage nodes per episode")
	replicas := flag.Int("replicas", 2, "with -cluster: copies per tile")
	killEvery := flag.Int("kill-every", 25, "with -cluster: ~one node kill or partition per this many steps (<0 disables)")
	healEvery := flag.Int("heal-every", 15, "with -cluster: ~one node heal per this many steps (<0 disables)")
	hintDir := flag.String("hint-dir", "", "with -cluster: durable hint-log directory (empty = in-memory hints)")
	verbose := flag.Bool("v", false, "print every episode verdict; with a failure, dump its op log and fault schedule")
	flag.Parse()

	if err := server.ValidateShards(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "occhaos: -shards: %v\n", err)
		os.Exit(2)
	}

	prof := faultfs.Profile{
		ReadErr:      *readErr,
		WriteErr:     *writeErr,
		WriteNoSpace: *noSpace,
		TornWrite:    *torn,
		SyncErr:      *syncErr,
		SyncDrop:     *syncDrop,
		LatencyTicks: faultfs.StormLatencyTicks,
	}

	seeds := make([]int64, 0, *episodes+1)
	for i := 0; i < *episodes; i++ {
		seeds = append(seeds, *seed+int64(i))
	}
	if *random {
		rs := time.Now().UnixNano()
		fmt.Printf("occhaos: random seed %d (rerun it with -seed %d -episodes 1)\n", rs, rs)
		seeds = append(seeds, rs)
	}

	if *operatorMode {
		runOps(seeds, dst.OpsOptions{
			Rounds:   *ops,
			Nodes:    *nodes,
			Replicas: *replicas,
			HintDir:  *hintDir,
		}, *verbose)
		return
	}

	if *tenantMode {
		runTenants(seeds, dst.TenantsOptions{
			Rounds:   *ops,
			Nodes:    *nodes,
			Replicas: *replicas,
			HintDir:  *hintDir,
		}, *verbose)
		return
	}

	if *clusterMode {
		runCluster(seeds, dst.ClusterOptions{
			Ops:       *ops,
			Nodes:     *nodes,
			Replicas:  *replicas,
			PutFrac:   *putFrac,
			KillEvery: *killEvery,
			HealEvery: *healEvery,
			HintDir:   *hintDir,
		}, *verbose)
		return
	}

	start := time.Now()
	failed := 0
	var faults int64
	for _, s := range seeds {
		res := dst.Run(dst.Options{
			Seed:       s,
			Ops:        *ops,
			Clients:    *clients,
			Workers:    *workers,
			PutFrac:    *putFrac,
			FlushEvery: *flushEvery,
			CrashEvery: *crashEvery,
			Shards:     *shards,
			WAL:        *wal,
			Compress:   *compress,
			Profile:    prof,
		})
		faults += res.FaultsInjected
		if *verbose {
			fmt.Println("occhaos:", res.Summary())
		}
		if res.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "occhaos: %s\n", res.Summary())
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "occhaos:   violation: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "occhaos: reproduce with: occhaos -seed %d -episodes 1 -v%s\n",
				s, setFlags())
			if *verbose {
				fmt.Fprintf(os.Stderr, "--- op log (seed %d) ---\n%s", s, res.OpLog)
				fmt.Fprintf(os.Stderr, "--- fault schedule (seed %d) ---\n%s", s, res.FaultSchedule)
			}
		}
	}

	fmt.Printf("occhaos: %d episodes, %d faults injected, %d failed in %.2fs\n",
		len(seeds), faults, failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// runCluster sweeps cluster episodes over the seed list and reports
// with the same verdict/reproducer discipline as the single-node
// sweep.
func runCluster(seeds []int64, base dst.ClusterOptions, verbose bool) {
	start := time.Now()
	failed := 0
	for _, s := range seeds {
		o := base
		o.Seed = s
		res := dst.RunCluster(o)
		if verbose {
			fmt.Println("occhaos:", res.Summary())
		}
		if res.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "occhaos: %s\n", res.Summary())
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "occhaos:   violation: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "occhaos: reproduce with: occhaos -seed %d -episodes 1 -v%s\n",
				s, setFlags())
			if verbose {
				fmt.Fprintf(os.Stderr, "--- op log (seed %d) ---\n%s", s, res.OpLog)
			}
		}
	}
	fmt.Printf("occhaos: %d cluster episodes, %d failed in %.2fs\n",
		len(seeds), failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// runOps sweeps operator episodes (scan-interrupted-by-crash,
// batch-PUT-power-cut) over the seed list with the same
// verdict/reproducer discipline as the other sweeps.
func runOps(seeds []int64, base dst.OpsOptions, verbose bool) {
	start := time.Now()
	failed := 0
	for _, s := range seeds {
		o := base
		o.Seed = s
		res := dst.RunOps(o)
		if verbose {
			fmt.Println("occhaos:", res.Summary())
		}
		if res.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "occhaos: %s\n", res.Summary())
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "occhaos:   violation: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "occhaos: reproduce with: occhaos -seed %d -episodes 1 -v%s\n",
				s, setFlags())
			if verbose {
				fmt.Fprintf(os.Stderr, "--- op log (seed %d) ---\n%s", s, res.OpLog)
			}
		}
	}
	fmt.Printf("occhaos: %d operator episodes, %d failed in %.2fs\n",
		len(seeds), failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// runTenants sweeps tenant episodes (two-tenant fairness plane under
// node kills and partitions) over the seed list with the same
// verdict/reproducer discipline as the other sweeps.
func runTenants(seeds []int64, base dst.TenantsOptions, verbose bool) {
	start := time.Now()
	failed := 0
	for _, s := range seeds {
		o := base
		o.Seed = s
		res := dst.RunTenants(o)
		if verbose {
			fmt.Println("occhaos:", res.Summary())
		}
		if res.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "occhaos: %s\n", res.Summary())
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "occhaos:   violation: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "occhaos: reproduce with: occhaos -seed %d -episodes 1 -v%s\n",
				s, setFlags())
			if verbose {
				fmt.Fprintf(os.Stderr, "--- op log (seed %d) ---\n%s", s, res.OpLog)
			}
		}
	}
	fmt.Printf("occhaos: %d tenant episodes, %d failed in %.2fs\n",
		len(seeds), failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// setFlags renders every flag the caller set explicitly (episode
// shape and fault rates alike — the seed replays the schedule only
// under the same options), minus the sweep bookkeeping flags the
// reproducer overrides.
func setFlags() string {
	s := ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed", "episodes", "random", "v":
			return
		}
		s += fmt.Sprintf(" -%s %v", f.Name, f.Value)
	})
	return s
}
