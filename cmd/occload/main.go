// Command occload is the load harness for the tile server: it starts
// an occd-equivalent server in-process, fires concurrent zipf-skewed
// clients at one of its arrays, and reports throughput, latency
// percentiles, engine hit rate and coalesced-request counts. With
// -json the scorecard is written as an outcore-bench/v1 report, so the
// serving numbers land in the same BENCH machinery occbench feeds.
//
//	occload -kernel trans -version c-opt -clients 16 -requests 4000 \
//	    -zipf 1.2 -json BENCH_load.json -metrics-out load-metrics.prom
//
// -shards N serves through a sharded tile plane (ooc.ShardedEngine)
// and prints the per-shard scorecard; -shard-sweep "1,2,4,8" runs the
// identical workload once per shard count and reports throughput
// versus N (each pass appends a row to the -json report, config
// suffixed "-s<N>").
//
// Two chaos modes ride on the same binary. -faults <seed> wraps the
// served arrays' backends in the internal/faultfs injector: a
// deterministic storm of EIO/ENOSPC/torn-write/sync failures surfaces
// as 5xx responses (counted, not fatal), and the injector heals before
// the final drain so the flush-retry path must land every surviving
// write. -crash-every <n> switches to episode mode: instead of HTTP
// load it runs one internal/dst simulation (power cuts every ~n steps,
// crash-consistency checks against the sequential model) and exits 1
// on any violation — see cmd/occhaos to sweep many seeds.
//
// -durable-puts makes every tile PUT durable before its 204, and -wal
// routes that durability through the write-ahead log's group commit;
// the scorecard then splits out acked-PUT latency percentiles, so the
// WAL's ack-latency win is measured by running the same write-heavy
// mix with and without -wal:
//
//	occload -read-frac 0.2 -durable-puts -dir /tmp/occ        # per-PUT fsync
//	occload -read-frac 0.2 -durable-puts -dir /tmp/occ -wal   # group commit
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"outcore/internal/codegen"
	"outcore/internal/dst"
	"outcore/internal/exp"
	"outcore/internal/faultfs"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/server"
	"outcore/internal/suite"
)

func main() {
	kernel := flag.String("kernel", "trans", "benchmark kernel whose arrays to serve")
	version := flag.String("version", "c-opt", "program version whose layouts the arrays use")
	n2 := flag.Int64("n2", 64, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 12, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 4, "extent of 4-D array dimensions")
	array := flag.String("array", "", "target array (default: the kernel's largest)")
	tileEdge := flag.Int64("tile-edge", 16, "requested tile edge in elements per dimension")
	clients := flag.Int("clients", 16, "concurrent clients")
	requests := flag.Int("requests", 2000, "total requests across all clients")
	zipf := flag.Float64("zipf", 1.1, "zipf skew of tile choice (<=1 = uniform)")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of requests that are reads")
	seed := flag.Int64("seed", 1, "deterministic tile-choice seed")
	maxCall := flag.Int64("maxcall", 8192, "per-call element cap (0 = unlimited)")
	workers := flag.Int("workers", 4, "engine I/O workers")
	cacheTiles := flag.Int("cache-tiles", 64, "resident tile bound (LRU), plane-wide (split across shards)")
	shards := flag.Int("shards", 1, "shard the tile plane this many ways (1 = single engine)")
	shardSweep := flag.String("shard-sweep", "", "comma-separated shard counts (e.g. 1,2,4,8): run the identical workload once per count and report throughput vs N (overrides -shards)")
	inflight := flag.Int("inflight", 0, "max concurrent data-plane requests (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth")
	rate := flag.Float64("rate", 0, "per-client requests/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst on top of -rate")
	dir := flag.String("dir", "", "backing directory for array files (empty = in-memory); sweeps use a subdirectory per pass")
	wal := flag.Bool("wal", false, "write-ahead log tile writes: durable PUTs ack on a group-committed log fsync instead of per-write stripe fsyncs")
	commitWindow := flag.Duration("commit-window", 0, "with -wal: wait this long before the group commit's log fsync so more writers share it (0 = fsync immediately; writers arriving mid-fsync still batch into the next round)")
	walCapWords := flag.Int64("wal-cap-words", 1<<23, "with -wal: per-log words before an inline checkpoint; each checkpoint stalls appenders for the member fsyncs, so serving runs want it large (log files are sparse)")
	durablePuts := flag.Bool("durable-puts", false, "make every tile PUT durable before its 204 (the write path -wal is built to speed up)")
	compress := flag.Bool("compress", false, "store array backends compressed, negotiate the x-ooc-gorilla tile wire encoding, and (with -wal) compress log record payloads; episode mode runs its WAL compressed")
	jsonOut := flag.String("json", "", "write the outcore-bench/v1 report here")
	metricsOut := flag.String("metrics-out", "", "write Prometheus metrics text here after the run (last sweep pass)")
	faults := flag.Int64("faults", 0, "inject deterministic storage faults from this seed (0 = off)")
	crashEvery := flag.Int("crash-every", 0, "episode mode: run one dst simulation with a power cut every ~n steps instead of HTTP load (0 = off)")
	flag.Parse()

	if err := server.ValidateShards(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "occload: -shards: %v\n", err)
		os.Exit(2)
	}
	counts := []int{*shards}
	sweeping := *shardSweep != ""
	if sweeping {
		var err error
		if counts, err = parseShardSweep(*shardSweep); err != nil {
			fmt.Fprintf(os.Stderr, "occload: -shard-sweep: %v\n", err)
			os.Exit(2)
		}
	}

	if *crashEvery != 0 {
		runEpisode(*faults, *crashEvery, *requests, *clients, *workers, *cacheTiles, *shards, *wal, *compress)
		return
	}

	k, ok := suite.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "occload: -kernel: unknown kernel %q (valid: %s)\n",
			*kernel, strings.Join(suite.KernelNames(), ", "))
		os.Exit(2)
	}
	ver, ok := suite.ParseVersion(*version)
	if !ok {
		fmt.Fprintf(os.Stderr, "occload: -version: unknown version %q (valid: %s)\n",
			*version, strings.Join(suite.VersionNames(), ", "))
		os.Exit(2)
	}

	var rows []exp.BenchEntry
	var lastSink *obs.Sink
	var prevThroughput float64
	for pass, n := range counts {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		lastSink = sink
		prog := k.Build(suite.Config{N2: *n2, N3: *n3, N4: *n4})
		plan, err := suite.PlanFor(prog, ver)
		fail(err)
		base := ooc.NewDisk(*maxCall).Observe(sink)
		if *compress {
			ooc.ObservePool(sink)
			base.EnableCompression()
		}
		var inj *faultfs.Injector
		if *faults != 0 {
			inj = faultfs.NewStorm(*faults).Observe(sink)
			inj.Heal() // array creation writes pass through; the storm starts with the load
			base.WrapBackend(inj.Wrap)
		}
		if *dir != "" {
			// Each pass gets its own subdirectory so a sweep's passes never
			// contend for the same backing-file locks.
			passDir := *dir
			if len(counts) > 1 {
				passDir = filepath.Join(*dir, fmt.Sprintf("s%d", n))
			}
			base.Dir(passDir)
			if n > 1 {
				base.Stripe(n, 0)
			}
		}
		if *wal {
			base.EnableWAL(ooc.WALOptions{
				Logs:         n,
				CapWords:     *walCapWords,
				CommitWindow: *commitWindow,
				Compress:     *compress,
				Obs:          sink,
			})
		}
		d, err := codegen.SetupDiskOn(base, prog, plan, nil)
		fail(err)
		if inj != nil {
			inj.Arm()
		}

		var target *ooc.Array
		if *array != "" {
			if target = d.ArrayByName(*array); target == nil {
				fail(fmt.Errorf("kernel %s has no array %q", k.Name, *array))
			}
		} else {
			for _, ar := range d.Arrays() {
				if target == nil || ar.Meta.Len() > target.Meta.Len() {
					target = ar
				}
			}
			if target == nil {
				fail(fmt.Errorf("kernel %s builds no arrays", k.Name))
			}
		}

		eng := server.BuildEngine(d, n, ooc.EngineOptions{Workers: *workers, CacheTiles: *cacheTiles, Obs: sink})
		srv := server.New(d, eng, server.Config{
			MaxInflight: *inflight,
			QueueDepth:  *queue,
			RatePerSec:  *rate,
			Burst:       *burst,
			DurablePuts: *durablePuts,
			Obs:         sink,
		})
		hts := httptest.NewServer(srv.Handler())

		res, err := server.RunLoad(server.LoadSpec{
			BaseURL:  hts.URL,
			Array:    target.Meta.Name,
			Dims:     target.Meta.Dims,
			TileEdge: *tileEdge,
			Clients:  *clients,
			Requests: *requests,
			ZipfS:    *zipf,
			ReadFrac: *readFrac,
			Seed:     *seed,
			Compress: *compress,
		})
		hts.Close()
		// The per-shard scorecard reads live shard counters, so capture it
		// before Drain closes the engine.
		var scorecard []ooc.EngineStats
		if se, ok := eng.(*ooc.ShardedEngine); ok {
			scorecard = se.ShardStats()
		}
		walStats := d.WALStats()
		if inj != nil {
			// Heal before the drain: the engine's flush retry against the
			// recovered device must land every surviving write — a drain
			// failure here is a real bug, not an injected one.
			inj.Heal()
		}
		drainErr := srv.Drain()
		fail(err)
		fail(drainErr)

		if pass == 0 {
			fmt.Printf("occload: %s/%s array %s %v, %d clients x %d requests (zipf %.2f, %d%% reads)\n",
				k.Name, ver, target.Meta.Name, target.Meta.Dims, *clients, *requests, *zipf, int(*readFrac*100))
		}
		if sweeping {
			fmt.Printf("shards %d:\n", n)
		}
		fmt.Printf("  ok %d, rejected %d, errors %d in %.2fs  (%.0f req/s)\n",
			res.OK, res.Rejected, res.Errors, res.Seconds, res.Throughput)
		fmt.Printf("  latency p50 %.2fms, p99 %.2fms\n", res.P50*1e3, res.P99*1e3)
		if res.PutP99 > 0 {
			mode := "buffered"
			if *durablePuts {
				mode = "durable (per-PUT fsync)"
				if *wal {
					mode = "durable (WAL group commit)"
				}
			}
			fmt.Printf("  acked PUTs: p50 %.2fms, p99 %.2fms  [%s]\n",
				res.PutP50*1e3, res.PutP99*1e3, mode)
		}
		fmt.Printf("  engine: %d hits / %d misses (hit rate %.1f%%), %d coalesced requests\n",
			res.Hits, res.Misses, 100*res.HitRate, res.Coalesced)
		if *compress && res.WireRawBytes > 0 && res.WireBytes > 0 {
			fmt.Printf("  wire: %d raw bytes moved as %d encoded (%.2fx)\n",
				res.WireRawBytes, res.WireBytes, float64(res.WireRawBytes)/float64(res.WireBytes))
		}
		for i, ss := range scorecard {
			fmt.Printf("    shard %d: %d hits / %d misses (hit rate %.1f%%), %d evictions, %d writebacks\n",
				i, ss.Hits, ss.Misses, 100*ss.HitRate(), ss.Evictions, ss.Writebacks)
		}
		if walStats != nil {
			fmt.Printf("  wal: %d appends, %d commits / %d fsyncs (%.1f records per fsync), %d checkpoints\n",
				walStats.Appends, walStats.Commits, walStats.Fsyncs, walStats.FsyncBatch, walStats.Checkpoints)
		}
		if inj != nil {
			fmt.Printf("  faults: seed %d, %d injected (healed before drain; errors above are expected)\n",
				*faults, inj.Injected())
		}
		if sweeping && pass > 0 && res.Throughput < prevThroughput {
			fmt.Printf("  note: throughput dropped vs previous pass (%.0f < %.0f req/s)\n",
				res.Throughput, prevThroughput)
		}
		prevThroughput = res.Throughput

		config := fmt.Sprintf("serve-%s-c%d-z%g", ver, *clients, *zipf)
		if sweeping || n > 1 {
			config += fmt.Sprintf("-s%d", n)
		}
		if *durablePuts {
			config += "-dp"
		}
		if *wal {
			config += "-wal"
		}
		if *compress {
			config += "-comp"
		}
		rows = append(rows, exp.LoadBenchEntry(k.Name, config, res))
		if res.Errors > 0 && inj == nil {
			fail(fmt.Errorf("%d requests failed", res.Errors))
		}
	}

	if *jsonOut != "" {
		rep := exp.BenchReport{
			Schema:  exp.BenchSchema,
			Setup:   exp.BenchSetup{N2: *n2, N3: *n3, N4: *n4},
			Results: rows,
		}
		f, err := os.Create(*jsonOut)
		fail(err)
		fail(rep.WriteJSON(f))
		fail(f.Close())
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fail(err)
		fail(lastSink.Metrics.WritePrometheus(f))
		fail(f.Close())
		fmt.Printf("  wrote %s\n", *metricsOut)
	}
}

// parseShardSweep parses "1,2,4,8" into validated shard counts.
func parseShardSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad shard count %q: %v", part, err)
		}
		if err := server.ValidateShards(n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// runEpisode is -crash-every: one deterministic dst simulation in
// place of the HTTP load, reusing the load-shape flags (requests as
// scheduler steps, clients as logical clients).
func runEpisode(seed int64, crashEvery, ops, clients, workers, cacheTiles, shards int, wal, compress bool) {
	var prof faultfs.Profile
	if seed != 0 {
		prof = faultfs.StormProfile()
	}
	res := dst.Run(dst.Options{
		Seed:       seed,
		Ops:        ops,
		Clients:    clients,
		CrashEvery: crashEvery,
		Workers:    workers,
		CacheTiles: cacheTiles,
		Shards:     shards,
		WAL:        wal,
		Compress:   compress,
		Profile:    prof,
	})
	fmt.Println("occload: episode", res.Summary())
	if res.Failed() {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "occload:   violation:", v)
		}
		walFlag := ""
		if wal {
			walFlag = " -wal"
		}
		if compress {
			walFlag += " -compress"
		}
		fmt.Fprintf(os.Stderr, "occload: reproduce with: occload -faults %d -crash-every %d -requests %d -clients %d -workers %d -cache-tiles %d -shards %d%s\n",
			seed, crashEvery, ops, clients, workers, cacheTiles, shards, walFlag)
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occload:", err)
		os.Exit(1)
	}
}
