// Command occload is the load harness for the tile server: it starts
// an occd-equivalent server in-process, fires concurrent zipf-skewed
// clients at one of its arrays, and reports throughput, latency
// percentiles, engine hit rate and coalesced-request counts. With
// -json the scorecard is written as an outcore-bench/v1 report, so the
// serving numbers land in the same BENCH machinery occbench feeds.
//
//	occload -kernel trans -version c-opt -clients 16 -requests 4000 \
//	    -zipf 1.2 -json BENCH_load.json -metrics-out load-metrics.prom
//
// -shards N serves through a sharded tile plane (ooc.ShardedEngine)
// and prints the per-shard scorecard; -shard-sweep "1,2,4,8" runs the
// identical workload once per shard count and reports throughput
// versus N (each pass appends a row to the -json report, config
// suffixed "-s<N>").
//
// -scenario switches the operator mix: scan-heavy streams layout-aware
// range scans over whole tile stripes (rows config serve-scan-*),
// write-heavy moves -batch-ops tiles per multi-op batch PUT
// (serve-batch-*), and mixed interleaves scans, batches and point ops
// (serve-mixed-*). The scorecard then adds the round-trip reduction —
// point-GET-equivalent requests over requests actually issued — which
// CI gates at >=5x for serve-scan rows. -arrival-rate R runs the mix
// open loop: arrivals follow a schedule fixed before the run and
// latency is measured from each scheduled arrival, so a stalling
// server accrues queueing delay instead of quietly thinning the
// offered load (no coordinated omission); config gains an -ol suffix.
//
// Cluster mode fires the same workload through an occrouter instead
// of a single server: -cluster <url> targets an external router, and
// -nodes "1,2,3" [-replicas R] starts an in-process router + N occd
// nodes per pass (rows config "serve-cluster-n<N>-r<R>", with the
// replication counters — handoff hints, read repairs — in the report).
//
// Two chaos modes ride on the same binary. -faults <seed> wraps the
// served arrays' backends in the internal/faultfs injector: a
// deterministic storm of EIO/ENOSPC/torn-write/sync failures surfaces
// as 5xx responses (counted, not fatal), and the injector heals before
// the final drain so the flush-retry path must land every surviving
// write. -crash-every <n> switches to episode mode: instead of HTTP
// load it runs one internal/dst simulation (power cuts every ~n steps,
// crash-consistency checks against the sequential model) and exits 1
// on any violation — see cmd/occhaos to sweep many seeds.
//
// -durable-puts makes every tile PUT durable before its 204, and -wal
// routes that durability through the write-ahead log's group commit;
// the scorecard then splits out acked-PUT latency percentiles, so the
// WAL's ack-latency win is measured by running the same write-heavy
// mix with and without -wal:
//
//	occload -read-frac 0.2 -durable-puts -dir /tmp/occ        # per-PUT fsync
//	occload -read-frac 0.2 -durable-puts -dir /tmp/occ -wal   # group commit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"outcore/internal/cluster"
	"outcore/internal/codegen"
	"outcore/internal/dst"
	"outcore/internal/exp"
	"outcore/internal/faultfs"
	"outcore/internal/ir"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/server"
	"outcore/internal/suite"
)

func main() {
	kernel := flag.String("kernel", "trans", "benchmark kernel whose arrays to serve")
	version := flag.String("version", "c-opt", "program version whose layouts the arrays use")
	n2 := flag.Int64("n2", 64, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 12, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 4, "extent of 4-D array dimensions")
	array := flag.String("array", "", "target array (default: the kernel's largest)")
	tileEdge := flag.Int64("tile-edge", 16, "requested tile edge in elements per dimension")
	clients := flag.Int("clients", 16, "concurrent clients")
	requests := flag.Int("requests", 2000, "total requests across all clients")
	zipf := flag.Float64("zipf", 1.1, "zipf skew of tile choice (<=1 = uniform)")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of requests that are reads")
	seed := flag.Int64("seed", 1, "deterministic tile-choice seed")
	maxCall := flag.Int64("maxcall", 8192, "per-call element cap (0 = unlimited)")
	workers := flag.Int("workers", 4, "engine I/O workers")
	cacheTiles := flag.Int("cache-tiles", 64, "resident tile bound (LRU), plane-wide (split across shards)")
	shards := flag.Int("shards", 1, "shard the tile plane this many ways (1 = single engine)")
	shardSweep := flag.String("shard-sweep", "", "comma-separated shard counts (e.g. 1,2,4,8): run the identical workload once per count and report throughput vs N (overrides -shards)")
	inflight := flag.Int("inflight", 0, "max concurrent data-plane requests (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth")
	scenario := flag.String("scenario", "", "operator mix: empty/point = single-tile GET/PUT; scan-heavy = streaming range scans over tile stripes; write-heavy = multi-op batch PUTs; mixed = scans+batches+point ops (rows config serve-scan-*/serve-batch-*/serve-mixed-*)")
	batchOps := flag.Int("batch-ops", 8, "tiles per batch request in the write-heavy/mixed scenarios")
	arrivalRate := flag.Float64("arrival-rate", 0, "open-loop arrivals/second across all clients: the schedule is fixed before the run and latency is measured from each request's scheduled arrival, so server stalls surface as queueing delay instead of thinning the offered load (coordinated-omission-safe; 0 = closed loop)")
	rate := flag.Float64("rate", 0, "per-client requests/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst on top of -rate")
	dir := flag.String("dir", "", "backing directory for array files (empty = in-memory); sweeps use a subdirectory per pass")
	wal := flag.Bool("wal", false, "write-ahead log tile writes: durable PUTs ack on a group-committed log fsync instead of per-write stripe fsyncs")
	commitWindow := flag.Duration("commit-window", 0, "with -wal: wait this long before the group commit's log fsync so more writers share it (0 = fsync immediately; writers arriving mid-fsync still batch into the next round)")
	walCapWords := flag.Int64("wal-cap-words", 1<<23, "with -wal: per-log words before an inline checkpoint; each checkpoint stalls appenders for the member fsyncs, so serving runs want it large (log files are sparse)")
	durablePuts := flag.Bool("durable-puts", false, "make every tile PUT durable before its 204 (the write path -wal is built to speed up)")
	compress := flag.Bool("compress", false, "store array backends compressed, negotiate the x-ooc-gorilla tile wire encoding, and (with -wal) compress log record payloads; episode mode runs its WAL compressed")
	jsonOut := flag.String("json", "", "write the outcore-bench/v1 report here")
	metricsOut := flag.String("metrics-out", "", "write Prometheus metrics text here after the run (last sweep pass)")
	faults := flag.Int64("faults", 0, "inject deterministic storage faults from this seed (0 = off)")
	crashEvery := flag.Int("crash-every", 0, "episode mode: run one dst simulation with a power cut every ~n steps instead of HTTP load (0 = off)")
	clusterAddr := flag.String("cluster", "", "drive the load at an external occrouter at this base URL instead of serving in-process")
	nodeSweep := flag.String("nodes", "", "in-process cluster mode: node count, or a comma list (e.g. 1,2,3) to run the identical workload once per count (rows config serve-cluster-n<N>-r<R>)")
	replicas := flag.Int("replicas", 2, "cluster mode: copies per tile (capped at the node count)")
	flag.Parse()

	if err := server.ValidateShards(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "occload: -shards: %v\n", err)
		os.Exit(2)
	}
	switch *scenario {
	case "", "point", "scan-heavy", "write-heavy", "mixed", "multi-tenant":
	default:
		fmt.Fprintf(os.Stderr, "occload: -scenario: unknown mix %q (valid: point, scan-heavy, write-heavy, mixed, multi-tenant)\n", *scenario)
		os.Exit(2)
	}
	if *scenario == "multi-tenant" && (*clusterAddr != "" || *nodeSweep != "" || *shardSweep != "") {
		fmt.Fprintln(os.Stderr, "occload: -scenario multi-tenant runs against one in-process server (no -cluster/-nodes/-shard-sweep)")
		os.Exit(2)
	}
	counts := []int{*shards}
	sweeping := *shardSweep != ""
	if sweeping {
		var err error
		if counts, err = parseShardSweep(*shardSweep); err != nil {
			fmt.Fprintf(os.Stderr, "occload: -shard-sweep: %v\n", err)
			os.Exit(2)
		}
	}

	if *crashEvery != 0 {
		runEpisode(*faults, *crashEvery, *requests, *clients, *workers, *cacheTiles, *shards, *wal, *compress)
		return
	}

	k, ok := suite.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "occload: -kernel: unknown kernel %q (valid: %s)\n",
			*kernel, strings.Join(suite.KernelNames(), ", "))
		os.Exit(2)
	}
	ver, ok := suite.ParseVersion(*version)
	if !ok {
		fmt.Fprintf(os.Stderr, "occload: -version: unknown version %q (valid: %s)\n",
			*version, strings.Join(suite.VersionNames(), ", "))
		os.Exit(2)
	}

	if *scenario == "multi-tenant" {
		rows, sink := multiTenantLoad(k, ver, mtSpec{
			n2: *n2, n3: *n3, n4: *n4,
			array:      *array,
			tileEdge:   *tileEdge,
			clients:    *clients,
			requests:   *requests,
			zipf:       *zipf,
			seed:       *seed,
			maxCall:    *maxCall,
			workers:    *workers,
			cacheTiles: *cacheTiles,
			shards:     *shards,
			inflight:   *inflight,
			queue:      *queue,
			compress:   *compress,
		})
		writeReports(*jsonOut, *metricsOut, *n2, *n3, *n4, rows, sink)
		return
	}

	if *clusterAddr != "" || *nodeSweep != "" {
		rows, sink := clusterLoad(k, clusterLoadSpec{
			addr:        *clusterAddr,
			nodeSweep:   *nodeSweep,
			replicas:    *replicas,
			n2:          *n2,
			n3:          *n3,
			n4:          *n4,
			array:       *array,
			tileEdge:    *tileEdge,
			clients:     *clients,
			requests:    *requests,
			zipf:        *zipf,
			readFrac:    *readFrac,
			seed:        *seed,
			workers:     *workers,
			cacheTiles:  *cacheTiles,
			shards:      *shards,
			wal:         *wal,
			durablePuts: *durablePuts,
			compress:    *compress,
			scenario:    *scenario,
			batchOps:    *batchOps,
			arrivalRate: *arrivalRate,
		})
		writeReports(*jsonOut, *metricsOut, *n2, *n3, *n4, rows, sink)
		return
	}

	var rows []exp.BenchEntry
	var lastSink *obs.Sink
	var prevThroughput float64
	for pass, n := range counts {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		lastSink = sink
		prog := k.Build(suite.Config{N2: *n2, N3: *n3, N4: *n4})
		plan, err := suite.PlanFor(prog, ver)
		fail(err)
		base := ooc.NewDisk(*maxCall).Observe(sink)
		if *compress {
			ooc.ObservePool(sink)
			base.EnableCompression()
		}
		var inj *faultfs.Injector
		if *faults != 0 {
			inj = faultfs.NewStorm(*faults).Observe(sink)
			inj.Heal() // array creation writes pass through; the storm starts with the load
			base.WrapBackend(inj.Wrap)
		}
		if *dir != "" {
			// Each pass gets its own subdirectory so a sweep's passes never
			// contend for the same backing-file locks.
			passDir := *dir
			if len(counts) > 1 {
				passDir = filepath.Join(*dir, fmt.Sprintf("s%d", n))
			}
			base.Dir(passDir)
			if n > 1 {
				base.Stripe(n, 0)
			}
		}
		if *wal {
			base.EnableWAL(ooc.WALOptions{
				Logs:         n,
				CapWords:     *walCapWords,
				CommitWindow: *commitWindow,
				Compress:     *compress,
				Obs:          sink,
			})
		}
		d, err := codegen.SetupDiskOn(base, prog, plan, nil)
		fail(err)
		if inj != nil {
			inj.Arm()
		}

		var target *ooc.Array
		if *array != "" {
			if target = d.ArrayByName(*array); target == nil {
				fail(fmt.Errorf("kernel %s has no array %q", k.Name, *array))
			}
		} else {
			for _, ar := range d.Arrays() {
				if target == nil || ar.Meta.Len() > target.Meta.Len() {
					target = ar
				}
			}
			if target == nil {
				fail(fmt.Errorf("kernel %s builds no arrays", k.Name))
			}
		}

		eng := server.BuildEngine(d, n, ooc.EngineOptions{Workers: *workers, CacheTiles: *cacheTiles, Obs: sink})
		srv := server.New(d, eng, server.Config{
			MaxInflight: *inflight,
			QueueDepth:  *queue,
			RatePerSec:  *rate,
			Burst:       *burst,
			DurablePuts: *durablePuts,
			Obs:         sink,
		})
		hts := httptest.NewServer(srv.Handler())

		res, err := server.RunLoad(server.LoadSpec{
			BaseURL:      hts.URL,
			Array:        target.Meta.Name,
			Dims:         target.Meta.Dims,
			TileEdge:     *tileEdge,
			Clients:      *clients,
			Requests:     *requests,
			ZipfS:        *zipf,
			ReadFrac:     *readFrac,
			Seed:         *seed,
			Compress:     *compress,
			Scenario:     *scenario,
			BatchOps:     *batchOps,
			OpenLoopRate: *arrivalRate,
		})
		hts.Close()
		// The per-shard scorecard reads live shard counters, so capture it
		// before Drain closes the engine.
		var scorecard []ooc.EngineStats
		if se, ok := eng.(*ooc.ShardedEngine); ok {
			scorecard = se.ShardStats()
		}
		walStats := d.WALStats()
		if inj != nil {
			// Heal before the drain: the engine's flush retry against the
			// recovered device must land every surviving write — a drain
			// failure here is a real bug, not an injected one.
			inj.Heal()
		}
		drainErr := srv.Drain()
		fail(err)
		fail(drainErr)

		if pass == 0 {
			fmt.Printf("occload: %s/%s array %s %v, %d clients x %d requests (zipf %.2f, %d%% reads)\n",
				k.Name, ver, target.Meta.Name, target.Meta.Dims, *clients, *requests, *zipf, int(*readFrac*100))
		}
		if sweeping {
			fmt.Printf("shards %d:\n", n)
		}
		fmt.Printf("  ok %d, rejected %d, errors %d in %.2fs  (%.0f req/s)\n",
			res.OK, res.Rejected, res.Errors, res.Seconds, res.Throughput)
		fmt.Printf("  latency p50 %.2fms, p99 %.2fms\n", res.P50*1e3, res.P99*1e3)
		if res.PutP99 > 0 {
			mode := "buffered"
			if *durablePuts {
				mode = "durable (per-PUT fsync)"
				if *wal {
					mode = "durable (WAL group commit)"
				}
			}
			fmt.Printf("  acked PUTs: p50 %.2fms, p99 %.2fms  [%s]\n",
				res.PutP50*1e3, res.PutP99*1e3, mode)
		}
		fmt.Printf("  engine: %d hits / %d misses (hit rate %.1f%%), %d coalesced requests\n",
			res.Hits, res.Misses, 100*res.HitRate, res.Coalesced)
		printOperators(res)
		if *compress && res.WireRawBytes > 0 && res.WireBytes > 0 {
			fmt.Printf("  wire: %d raw bytes moved as %d encoded (%.2fx)\n",
				res.WireRawBytes, res.WireBytes, float64(res.WireRawBytes)/float64(res.WireBytes))
		}
		for i, ss := range scorecard {
			fmt.Printf("    shard %d: %d hits / %d misses (hit rate %.1f%%), %d evictions, %d writebacks\n",
				i, ss.Hits, ss.Misses, 100*ss.HitRate(), ss.Evictions, ss.Writebacks)
		}
		if walStats != nil {
			fmt.Printf("  wal: %d appends, %d commits / %d fsyncs (%.1f records per fsync), %d checkpoints\n",
				walStats.Appends, walStats.Commits, walStats.Fsyncs, walStats.FsyncBatch, walStats.Checkpoints)
		}
		if inj != nil {
			fmt.Printf("  faults: seed %d, %d injected (healed before drain; errors above are expected)\n",
				*faults, inj.Injected())
		}
		if sweeping && pass > 0 && res.Throughput < prevThroughput {
			fmt.Printf("  note: throughput dropped vs previous pass (%.0f < %.0f req/s)\n",
				res.Throughput, prevThroughput)
		}
		prevThroughput = res.Throughput

		config := fmt.Sprintf("%s-%s-c%d-z%g", configPrefix(*scenario), ver, *clients, *zipf)
		if sweeping || n > 1 {
			config += fmt.Sprintf("-s%d", n)
		}
		if *arrivalRate > 0 {
			config += "-ol"
		}
		if *durablePuts {
			config += "-dp"
		}
		if *wal {
			config += "-wal"
		}
		if *compress {
			config += "-comp"
		}
		rows = append(rows, exp.LoadBenchEntry(k.Name, config, res))
		if res.Errors > 0 && inj == nil {
			fail(fmt.Errorf("%d requests failed", res.Errors))
		}
	}

	writeReports(*jsonOut, *metricsOut, *n2, *n3, *n4, rows, lastSink)
}

// configPrefix names the bench row after the operator mix, so operator
// rows are greppable by config: serve-scan-* rows carry the streaming
// range-scan numbers CI gates at a >=5x round-trip reduction, and
// serve-batch-*/serve-mixed-* rows ride alongside informationally.
func configPrefix(scenario string) string {
	switch scenario {
	case "scan-heavy":
		return "serve-scan"
	case "write-heavy":
		return "serve-batch"
	case "mixed":
		return "serve-mixed"
	case "multi-tenant":
		return "serve-mt"
	}
	return "serve"
}

// printOperators renders the operator scorecard: how many streaming
// scans / batch requests ran, and the round-trip reduction — the
// single-tile-request equivalent of the same tile volume divided by
// the HTTP requests actually issued.
func printOperators(res server.LoadResult) {
	if res.ScanRequests == 0 && res.BatchRequests == 0 {
		return
	}
	if res.ScanRequests > 0 {
		fmt.Printf("  scans: %d requests streamed %d chunks\n", res.ScanRequests, res.ScanChunks)
	}
	if res.BatchRequests > 0 {
		fmt.Printf("  batches: %d requests moved %d tile ops\n", res.BatchRequests, res.BatchOpsMoved)
	}
	if res.RoundTrips > 0 {
		fmt.Printf("  round trips: %d issued vs %d point-GET equivalent (%.1fx reduction)\n",
			res.RoundTrips, res.PointRoundTrips, float64(res.PointRoundTrips)/float64(res.RoundTrips))
	}
}

// writeReports lands the run's outcore-bench/v1 report and Prometheus
// snapshot (last pass's sink; nil when the run had no in-process
// observer, e.g. load fired at an external router).
func writeReports(jsonOut, metricsOut string, n2, n3, n4 int64, rows []exp.BenchEntry, sink *obs.Sink) {
	if jsonOut != "" {
		rep := exp.BenchReport{
			Schema:  exp.BenchSchema,
			Setup:   exp.BenchSetup{N2: n2, N3: n3, N4: n4},
			Results: rows,
		}
		f, err := os.Create(jsonOut)
		fail(err)
		fail(rep.WriteJSON(f))
		fail(f.Close())
		fmt.Printf("  wrote %s\n", jsonOut)
	}
	if metricsOut != "" {
		if sink == nil {
			fmt.Fprintln(os.Stderr, "occload: -metrics-out: no in-process metrics against an external -cluster target; scrape the router's /metrics instead")
			return
		}
		f, err := os.Create(metricsOut)
		fail(err)
		fail(sink.Metrics.WritePrometheus(f))
		fail(f.Close())
		fmt.Printf("  wrote %s\n", metricsOut)
	}
}

// mtSpec carries the load-shape flags into the multi-tenant scenario.
type mtSpec struct {
	n2, n3, n4 int64
	array      string
	tileEdge   int64
	clients    int
	requests   int
	zipf       float64
	seed       int64
	maxCall    int64
	workers    int
	cacheTiles int
	shards     int
	inflight   int
	queue      int
	compress   bool
}

// multiTenantLoad is -scenario multi-tenant: two tenant populations —
// "point", an interactive point-GET tenant at DRR weight 4, and
// "scan", an aggressive streaming scanner at weight 1 with a chunk
// cap — against one server whose tenant plane does the isolating. The
// point tenant runs once alone (its solo baseline) and once with the
// scanner saturating the same plane; the serve-mt-* rows carry both
// p99s, and CI gates contended <= 2x solo.
func multiTenantLoad(k suite.Kernel, ver suite.Version, s mtSpec) ([]exp.BenchEntry, *obs.Sink) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	prog := k.Build(suite.Config{N2: s.n2, N3: s.n3, N4: s.n4})
	plan, err := suite.PlanFor(prog, ver)
	fail(err)
	base := ooc.NewDisk(s.maxCall).Observe(sink)
	if s.compress {
		ooc.ObservePool(sink)
		base.EnableCompression()
	}
	d, err := codegen.SetupDiskOn(base, prog, plan, nil)
	fail(err)
	var target *ooc.Array
	if s.array != "" {
		if target = d.ArrayByName(s.array); target == nil {
			fail(fmt.Errorf("kernel %s has no array %q", k.Name, s.array))
		}
	} else {
		for _, ar := range d.Arrays() {
			if target == nil || ar.Meta.Len() > target.Meta.Len() {
				target = ar
			}
		}
		if target == nil {
			fail(fmt.Errorf("kernel %s builds no arrays", k.Name))
		}
	}

	eng := server.BuildEngine(d, s.shards, ooc.EngineOptions{Workers: s.workers, CacheTiles: s.cacheTiles, Obs: sink})
	srv := server.New(d, eng, server.Config{
		MaxInflight: s.inflight,
		QueueDepth:  s.queue,
		Tenants: server.TenantConfig{
			Weights:         map[string]float64{"point": 4, "scan": 1},
			MaxScanInflight: 2,
		},
		Obs: sink,
	})
	hts := httptest.NewServer(srv.Handler())

	pointClients := s.clients / 2
	if pointClients < 1 {
		pointClients = 1
	}
	scanClients := s.clients - pointClients
	if scanClients < 1 {
		scanClients = 1
	}
	pointReqs := s.requests / 2
	if pointReqs < 1 {
		pointReqs = 1
	}
	scanReqs := s.requests - pointReqs
	if scanReqs < 1 {
		scanReqs = 1
	}
	pointSpec := server.LoadSpec{
		BaseURL:  hts.URL,
		Array:    target.Meta.Name,
		Dims:     target.Meta.Dims,
		TileEdge: s.tileEdge,
		Clients:  pointClients,
		Requests: pointReqs,
		ZipfS:    s.zipf,
		ReadFrac: 1.0,
		Seed:     s.seed,
		Compress: s.compress,
		Tenant:   "point",
	}

	// Pass 1 — solo baseline: the point tenant has the plane to itself.
	solo, err := server.RunLoad(pointSpec)
	fail(err)

	// Pass 2 — contended: the scanner floods the same plane while the
	// identical point workload repeats.
	var contended, scanRes server.LoadResult
	var pErr, sErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		scanRes, sErr = server.RunLoad(server.LoadSpec{
			BaseURL:  hts.URL,
			Array:    target.Meta.Name,
			Dims:     target.Meta.Dims,
			TileEdge: s.tileEdge,
			Clients:  scanClients,
			Requests: scanReqs,
			ZipfS:    s.zipf,
			ReadFrac: 1.0,
			Seed:     s.seed + 7331,
			Compress: s.compress,
			Scenario: "scan-heavy",
			Tenant:   "scan",
		})
	}()
	go func() {
		defer wg.Done()
		contended, pErr = server.RunLoad(pointSpec)
	}()
	wg.Wait()
	fail(pErr)
	fail(sErr)

	// Per-tenant scorecard straight from /v1/stats before the server
	// goes away.
	var st struct {
		Tenants []server.TenantStat `json:"tenants"`
	}
	resp, err := http.Get(hts.URL + "/v1/stats")
	fail(err)
	fail(json.NewDecoder(resp.Body).Decode(&st))
	resp.Body.Close()
	hts.Close()
	fail(srv.Drain())

	fmt.Printf("occload: %s/%s array %s %v, multi-tenant: point w4 x%d clients vs scan w1 x%d clients\n",
		k.Name, ver, target.Meta.Name, target.Meta.Dims, pointClients, scanClients)
	ratio := 0.0
	if solo.P99 > 0 {
		ratio = contended.P99 / solo.P99
	}
	fmt.Printf("  point solo:      ok %d, p50 %.2fms, p99 %.2fms\n", solo.OK, solo.P50*1e3, solo.P99*1e3)
	fmt.Printf("  point contended: ok %d, p50 %.2fms, p99 %.2fms  (%.2fx solo p99)\n",
		contended.OK, contended.P50*1e3, contended.P99*1e3, ratio)
	fmt.Printf("  scan contended:  ok %d, p50 %.2fms, p99 %.2fms, %d scans streamed %d chunks\n",
		scanRes.OK, scanRes.P50*1e3, scanRes.P99*1e3, scanRes.ScanRequests, scanRes.ScanChunks)
	for _, ts := range st.Tenants {
		fmt.Printf("  tenant %s (weight %g): %d requests, %d bytes, %d queue waits, %d chunks, %d quota rejections\n",
			ts.Tenant, ts.Weight, ts.Requests, ts.Bytes, ts.QueueWaits, ts.Chunks, ts.RejectedQuota)
	}

	cfg := fmt.Sprintf("serve-mt-%s-c%d-z%g", ver, s.clients, s.zipf)
	pointRow := exp.LoadBenchEntry(k.Name, cfg+"-point", contended)
	pointRow.Tenant = "point"
	pointRow.P99SoloMs = solo.P99 * 1e3
	pointRow.P99ContendedMs = contended.P99 * 1e3
	scanRow := exp.LoadBenchEntry(k.Name, cfg+"-scan", scanRes)
	scanRow.Tenant = "scan"
	scanRow.P99ContendedMs = scanRes.P99 * 1e3
	if n := solo.Errors + contended.Errors + scanRes.Errors; n > 0 {
		fail(fmt.Errorf("%d requests failed", n))
	}
	return []exp.BenchEntry{pointRow, scanRow}, sink
}

// parseShardSweep parses "1,2,4,8" into validated shard counts.
func parseShardSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad shard count %q: %v", part, err)
		}
		if err := server.ValidateShards(n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// clusterLoadSpec carries the load-shape flags into cluster mode.
type clusterLoadSpec struct {
	addr        string // external occrouter base URL ("" = in-process)
	nodeSweep   string // in-process node counts, e.g. "3" or "1,2,3"
	replicas    int
	n2, n3, n4  int64
	array       string
	tileEdge    int64
	clients     int
	requests    int
	zipf        float64
	readFrac    float64
	seed        int64
	workers     int
	cacheTiles  int
	shards      int
	wal         bool
	durablePuts bool
	compress    bool
	scenario    string
	batchOps    int
	arrivalRate float64
}

// clusterLoad fires the identical zipf workload at a tile cluster: an
// external occrouter (-cluster <url>) or an in-process router plus N
// occd nodes per pass (-nodes "1,2,3"). The router's /v1/stats mirrors
// occd's keys (engine counters summed over reachable nodes) and adds
// the cluster scorecard, so RunLoad works unchanged and each pass
// lands a serve-cluster-n<N>-r<R> row with the replication counters.
func clusterLoad(k suite.Kernel, spec clusterLoadSpec) ([]exp.BenchEntry, *obs.Sink) {
	// Placement is router-side grid tiling; the kernel only contributes
	// the target array's name and extents (row-major on every node).
	prog := k.Build(suite.Config{N2: spec.n2, N3: spec.n3, N4: spec.n4})
	var target *ir.Array
	for _, a := range prog.Arrays {
		if spec.array != "" {
			if a.Name == spec.array {
				target = a
				break
			}
			continue
		}
		if target == nil || a.Len() > target.Len() {
			target = a
		}
	}
	if target == nil {
		if spec.array != "" {
			fail(fmt.Errorf("kernel %s has no array %q", k.Name, spec.array))
		}
		fail(fmt.Errorf("kernel %s builds no arrays", k.Name))
	}

	if spec.addr != "" {
		row := clusterPass(k, spec, target, spec.addr, nil, 0, true)
		return []exp.BenchEntry{row}, nil
	}

	counts, err := parseNodeSweep(spec.nodeSweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occload: -nodes: %v\n", err)
		os.Exit(2)
	}
	var rows []exp.BenchEntry
	var lastSink *obs.Sink
	for pass, n := range counts {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		lastSink = sink
		lc, err := cluster.NewLocal(cluster.LocalOptions{
			Nodes:       n,
			Replicas:    spec.replicas,
			TileDim:     spec.tileEdge,
			CacheTiles:  spec.cacheTiles,
			Shards:      spec.shards,
			Workers:     spec.workers,
			WAL:         spec.wal,
			DurablePuts: spec.durablePuts,
			NoWire:      !spec.compress,
			Seed:        spec.seed,
			Obs:         sink,
		})
		fail(err)
		fail(lc.CreateArray(target.Name, target.Dims...))
		row := clusterPass(k, spec, target, lc.RouterURL, lc, n, pass == 0)
		fail(lc.Close())
		rows = append(rows, row)
	}
	return rows, lastSink
}

// clusterPass runs one workload pass against a router at base and
// renders its bench row. lc is nil for an external target, where the
// node count comes from the router's own scorecard.
func clusterPass(k suite.Kernel, spec clusterLoadSpec, target *ir.Array, base string, lc *cluster.LocalCluster, n int, first bool) exp.BenchEntry {
	cli := cluster.NewNodeClient("router", base)
	if lc == nil {
		fail(cli.CreateArray(target.Name, target.Dims, ""))
		var cs struct {
			Cluster struct {
				Nodes int `json:"nodes"`
			} `json:"cluster"`
		}
		fail(cli.Stats(&cs))
		n = cs.Cluster.Nodes
	}
	res, err := server.RunLoad(server.LoadSpec{
		BaseURL:      base,
		Array:        target.Name,
		Dims:         target.Dims,
		TileEdge:     spec.tileEdge,
		Clients:      spec.clients,
		Requests:     spec.requests,
		ZipfS:        spec.zipf,
		ReadFrac:     spec.readFrac,
		Seed:         spec.seed,
		Compress:     spec.compress,
		Scenario:     spec.scenario,
		BatchOps:     spec.batchOps,
		OpenLoopRate: spec.arrivalRate,
	})
	fail(err)

	if first {
		fmt.Printf("occload: %s array %s %v via occrouter, %d clients x %d requests (zipf %.2f, %d%% reads)\n",
			k.Name, target.Name, target.Dims, spec.clients, spec.requests, spec.zipf, int(spec.readFrac*100))
	}
	fmt.Printf("nodes %d (replicas %d):\n", n, res.Replicas)
	fmt.Printf("  ok %d, rejected %d, errors %d in %.2fs  (%.0f req/s)\n",
		res.OK, res.Rejected, res.Errors, res.Seconds, res.Throughput)
	fmt.Printf("  latency p50 %.2fms, p99 %.2fms\n", res.P50*1e3, res.P99*1e3)
	if res.PutP99 > 0 {
		fmt.Printf("  acked PUTs: p50 %.2fms, p99 %.2fms  [quorum %d/%d]\n",
			res.PutP50*1e3, res.PutP99*1e3, res.Replicas/2+1, res.Replicas)
	}
	fmt.Printf("  engine (all nodes): %d hits / %d misses (hit rate %.1f%%), %d coalesced requests\n",
		res.Hits, res.Misses, 100*res.HitRate, res.Coalesced)
	fmt.Printf("  cluster: %d handoff hints, %d read repairs\n", res.HandoffHints, res.ReadRepairs)
	printOperators(res)

	config := fmt.Sprintf("%s-cluster-n%d-r%d", configPrefix(spec.scenario), n, res.Replicas)
	if spec.durablePuts {
		config += "-dp"
	}
	if spec.wal {
		config += "-wal"
	}
	if spec.compress {
		config += "-comp"
	}
	if spec.arrivalRate > 0 {
		config += "-ol"
	}
	if res.Errors > 0 {
		fail(fmt.Errorf("%d requests failed", res.Errors))
	}
	return exp.LoadBenchEntry(k.Name, config, res)
}

// parseNodeSweep parses "1,2,3" into node counts.
func parseNodeSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node count %q: %v", part, err)
		}
		if n < 1 || n > 16 {
			return nil, fmt.Errorf("node count %d out of range (valid: 1..16)", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// runEpisode is -crash-every: one deterministic dst simulation in
// place of the HTTP load, reusing the load-shape flags (requests as
// scheduler steps, clients as logical clients).
func runEpisode(seed int64, crashEvery, ops, clients, workers, cacheTiles, shards int, wal, compress bool) {
	var prof faultfs.Profile
	if seed != 0 {
		prof = faultfs.StormProfile()
	}
	res := dst.Run(dst.Options{
		Seed:       seed,
		Ops:        ops,
		Clients:    clients,
		CrashEvery: crashEvery,
		Workers:    workers,
		CacheTiles: cacheTiles,
		Shards:     shards,
		WAL:        wal,
		Compress:   compress,
		Profile:    prof,
	})
	fmt.Println("occload: episode", res.Summary())
	if res.Failed() {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "occload:   violation:", v)
		}
		walFlag := ""
		if wal {
			walFlag = " -wal"
		}
		if compress {
			walFlag += " -compress"
		}
		fmt.Fprintf(os.Stderr, "occload: reproduce with: occload -faults %d -crash-every %d -requests %d -clients %d -workers %d -cache-tiles %d -shards %d%s\n",
			seed, crashEvery, ops, clients, workers, cacheTiles, shards, walFlag)
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occload:", err)
		os.Exit(1)
	}
}
