// Command occd is the out-of-core tile-server daemon: it exposes a
// disk of arrays over HTTP through internal/server, with request
// coalescing, per-client rate limiting and bounded admission in front
// of the shared tile engine.
//
// Start it empty (clients create arrays via POST /v1/arrays), or
// pre-create a benchmark kernel's arrays so the daemon serves exactly
// the file layouts the optimizer chose for that program version:
//
//	occd -addr :8080 -dir /var/lib/occd -kernel trans -version c-opt
//
// SIGTERM or SIGINT trigger the graceful drain: the listener stops
// accepting, in-flight requests finish (bounded by -drain-timeout),
// dirty tiles flush and sync to the backing files, and the process
// exits 0. See the package comment on internal/server for the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"outcore/internal/codegen"
	"outcore/internal/faultfs"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/server"
	"outcore/internal/suite"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "backing directory for array files (empty = in-memory)")
	keep := flag.Bool("keep", false, "with -dir: keep existing array file contents instead of truncating")
	kernel := flag.String("kernel", "", "pre-create this benchmark kernel's arrays")
	version := flag.String("version", "c-opt", "program version whose layouts -kernel arrays use")
	n2 := flag.Int64("n2", 128, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 16, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 6, "extent of 4-D array dimensions")
	maxCall := flag.Int64("maxcall", 8192, "per-call element cap (0 = unlimited)")
	workers := flag.Int("workers", 4, "engine I/O workers")
	cacheTiles := flag.Int("cache-tiles", 256, "resident tile bound (LRU)")
	shards := flag.Int("shards", 1, "shard the tile plane this many ways (1 = single engine); with -dir, backing files stripe to match")
	inflight := flag.Int("inflight", 0, "max concurrent data-plane requests (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond -inflight")
	rate := flag.Float64("rate", 0, "per-client requests/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client burst on top of -rate")
	tenantWeights := flag.String("tenant-weights", "", "DRR admission weights per tenant, e.g. batch=1,interactive=4 (unlisted tenants weigh 1)")
	tenantQuotaBytes := flag.Float64("tenant-quota-bytes", 0, "per-tenant payload bytes/second budget (0 = unlimited)")
	tenantQuotaRPS := flag.Float64("tenant-quota-rps", 0, "per-tenant requests/second budget (0 = unlimited)")
	maxScanInflight := flag.Int("max-scan-inflight", 0, "per-tenant cap on in-flight scan/batch chunks (0 = unlimited)")
	maxArrayElems := flag.Int64("max-array-elems", 0, "cap on a created array's element count (0 = default, <0 = unlimited)")
	maxTileElems := flag.Int64("max-tile-elems", 0, "cap on one tile request's element count (0 = default, <0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	wal := flag.Bool("wal", false, "write-ahead log tile writes: acked durability via group-committed log fsyncs instead of per-write stripe fsyncs")
	walLogs := flag.Int("wal-logs", 0, "with -wal: number of per-shard logs (0 = one per shard)")
	walCap := flag.Int64("wal-cap-words", 0, "with -wal: per-log capacity in 8-byte words (0 = default)")
	commitWindow := flag.Duration("commit-window", 0, "with -wal: wait this long before the group commit's log fsync so more writers share it (0 = fsync immediately; writers arriving mid-fsync still batch into the next round)")
	walCheckpoint := flag.Duration("wal-checkpoint", time.Second, "with -wal: background compaction interval (0 = only when a log fills)")
	durablePuts := flag.Bool("durable-puts", false, "make every tile PUT durable before its 204 (with -wal: via the group commit)")
	compress := flag.Bool("compress", false, "store array backends compressed (Gorilla tile codec) and, with -wal, compress log record payloads; /v1/stats grows a compression scorecard")
	faults := flag.Int64("faults", 0, "TESTING ONLY: inject deterministic storage faults from this seed (0 = off); failures surface as 5xx")
	clusterNode := flag.String("cluster-node", "", "run as a cluster storage node with this ID: /v1/stats reports the ID and tile responses carry write-generation headers for the router")
	peers := flag.String("peers", "", "with -cluster-node: comma-separated sibling node IDs (gossip-free static membership, recorded for operators; the router owns placement)")
	flag.Parse()

	if err := server.ValidateShards(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "occd: -shards: %v\n", err)
		os.Exit(2)
	}
	if *peers != "" && *clusterNode == "" {
		fmt.Fprintln(os.Stderr, "occd: -peers requires -cluster-node")
		os.Exit(2)
	}
	weights, err := server.ParseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occd: -tenant-weights: %v\n", err)
		os.Exit(2)
	}

	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	ooc.ObservePool(sink)
	d := ooc.NewDisk(*maxCall).Observe(sink)
	if *compress {
		d.EnableCompression()
	}
	var inj *faultfs.Injector
	if *faults != 0 {
		inj = faultfs.NewStorm(*faults).Observe(sink)
		d.WrapBackend(inj.Wrap)
		log.Printf("occd: FAULT INJECTION armed (seed %d) — storage errors are deliberate; do not serve real data", *faults)
	}
	if *dir != "" {
		d.Dir(*dir)
		if *keep {
			d.KeepExisting()
		}
		if *shards > 1 {
			// PFS-style layout: stripe each backing file across as many
			// sub-files as the plane has shards.
			d.Stripe(*shards, 0)
		}
	}
	if *wal {
		logs := *walLogs
		if logs <= 0 {
			logs = *shards
		}
		d.EnableWAL(ooc.WALOptions{
			Logs:            logs,
			CapWords:        *walCap,
			CommitWindow:    *commitWindow,
			CheckpointEvery: *walCheckpoint,
			Compress:        *compress,
			Obs:             sink,
		})
	}
	if *kernel != "" {
		k, ok := suite.ByName(*kernel)
		if !ok {
			fmt.Fprintf(os.Stderr, "occd: -kernel: unknown kernel %q (valid: %s)\n",
				*kernel, strings.Join(suite.KernelNames(), ", "))
			os.Exit(2)
		}
		ver, ok := suite.ParseVersion(*version)
		if !ok {
			fmt.Fprintf(os.Stderr, "occd: -version: unknown version %q (valid: %s)\n",
				*version, strings.Join(suite.VersionNames(), ", "))
			os.Exit(2)
		}
		prog := k.Build(suite.Config{N2: *n2, N3: *n3, N4: *n4})
		plan, err := suite.PlanFor(prog, ver)
		fail(err)
		if inj != nil {
			inj.Heal() // array creation passes through; the storm starts with serving
		}
		_, err = codegen.SetupDiskOn(d, prog, plan, nil)
		fail(err)
		if inj != nil {
			inj.Arm()
		}
		log.Printf("occd: created %d arrays for %s/%s", len(prog.Arrays), k.Name, ver)
	}
	if *wal {
		// Replay any log tail a previous (crashed) occd left behind:
		// with -keep the acked writes it logged reappear before serving
		// starts. A fresh directory replays nothing.
		rep, err := d.ReplayWAL()
		fail(err)
		if rep.Applied+rep.Discarded+rep.Skipped > 0 {
			log.Printf("occd: WAL replay: %d records applied, %d stale/torn discarded, %d skipped",
				rep.Applied, rep.Discarded, rep.Skipped)
		}
	}

	eng := server.BuildEngine(d, *shards, ooc.EngineOptions{Workers: *workers, CacheTiles: *cacheTiles, Obs: sink})
	srv := server.New(d, eng, server.Config{
		MaxInflight:   *inflight,
		QueueDepth:    *queue,
		RatePerSec:    *rate,
		Burst:         *burst,
		MaxArrayElems: *maxArrayElems,
		MaxTileElems:  *maxTileElems,
		DurablePuts:   *durablePuts,
		NodeID:        *clusterNode,
		Tenants: server.TenantConfig{
			Weights:          weights,
			QuotaBytesPerSec: *tenantQuotaBytes,
			QuotaRPS:         *tenantQuotaRPS,
			MaxScanInflight:  *maxScanInflight,
		},
		Obs: sink,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	if *clusterNode != "" {
		siblings := "none listed"
		if *peers != "" {
			siblings = strings.Join(strings.Split(*peers, ","), ", ")
		}
		log.Printf("occd: cluster node %q (peers: %s); placement is router-side", *clusterNode, siblings)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("occd: serving on %s", *addr)

	select {
	case err := <-errc:
		// The listener died on its own (bad address, port in use).
		fail(err)
	case <-ctx.Done():
		stop() // a second signal kills us the hard way
		log.Print("occd: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Even if Shutdown gives up at the deadline with requests still
		// in flight, srv.Drain below blocks until every one of them has
		// released its engine handle before closing the engine — an
		// acknowledged write is never dropped by a slow drain.
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("occd: shutdown: %v", err)
		}
	}
	if inj != nil {
		// Heal before the drain: the flush retry against the recovered
		// device must land every surviving write.
		inj.Heal()
	}
	fail(srv.Drain())
	log.Print("occd: drained; dirty tiles flushed and synced")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occd:", err)
		os.Exit(1)
	}
}
