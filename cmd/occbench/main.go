// Command occbench regenerates the paper's evaluation artifacts on the
// simulated Paragon/PFS platform:
//
//	occbench -table 2                 # Table 2 (normalized times, 16 procs)
//	occbench -table 3                 # Table 3 (speedups 16..128 procs)
//	occbench -figure 1|2|3            # the three figures
//	occbench -ablation tiling|memory|order|storage
//	occbench -ablation engine -kernel mxm   # sequential runtime vs
//	                                        # concurrent tile engine
//	occbench -suite -json out.json    # benchmark suite -> BENCH JSON
//	occbench -suite -json out.json -baseline BENCH_baseline.json
//	                                  # ...and fail on >10% regressions
//
// Scale and platform knobs: -n2/-n3/-n4 (array extents), -procs,
// -ionodes, -memfrac, -kernels (comma-separated subset).
// Overlapped-I/O knobs: -workers (tile-engine I/O goroutines),
// -cache-tiles (LRU tile-cache capacity; > 0 also routes the table
// measurements through the cached engine).
// Observability: -trace-out file.json writes a Chrome trace_event
// capture of the run (open in Perfetto), -metrics-out file.prom writes
// the metrics registry in Prometheus text format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"outcore/internal/exp"
	"outcore/internal/obs"
	"outcore/internal/suite"
)

func main() {
	table := flag.Int("table", 0, "reproduce Table 2 or 3")
	figure := flag.Int("figure", 0, "reproduce Figure 1, 2 or 3")
	ablation := flag.String("ablation", "", "ablation: tiling, memory, order, storage, optimal, blocked")
	suiteRun := flag.Bool("suite", false, "run the benchmark suite (kernels x {sequential, engine, engine+prefetch, sharded, compress})")
	compressOnly := flag.Bool("compress", false, "with -suite: run only the engine / engine-compress pair — the focused leg whose bytes_disk_raw/bytes_disk and allocs_per_get fields the compression gate reads")
	jsonOut := flag.String("json", "", "with -suite: write the BENCH JSON report to this file")
	baseline := flag.String("baseline", "", "with -suite: compare against this BENCH JSON and fail on regressions")
	tolerance := flag.Float64("tolerance", 0.10, "with -baseline: allowed fractional increase in io_calls / sim makespan")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all ten; suite: mat,mxm,trans,syr2k)")
	kernel := flag.String("kernel", "mxm", "kernel for single-kernel ablations")
	n2 := flag.Int64("n2", 128, "extent of 2-D array dimensions")
	n3 := flag.Int64("n3", 24, "extent of 3-D array dimensions")
	n4 := flag.Int64("n4", 8, "extent of 4-D array dimensions")
	procs := flag.Int("procs", 16, "processor count for Table 2")
	ionodes := flag.Int("ionodes", 64, "I/O nodes in the simulated PFS")
	memFrac := flag.Int64("memfrac", 128, "memory budget = data size / memfrac")
	workers := flag.Int("workers", 0, "tile-engine I/O workers (0 = synchronous)")
	cacheTiles := flag.Int("cache-tiles", 0, "tile-engine LRU cache capacity in tiles (0 = engine off for tables; engine ablation defaults to 8)")
	version := flag.String("version", "c-opt", "program version for the engine ablation")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON capture of the run to this file (view in Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry in Prometheus text format to this file")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *suiteRun {
		// Suite defaults are deliberately smaller than the table defaults:
		// CI runs the data-backed leg of every cell, and the deterministic
		// gated metrics (io_calls, sim makespan) are scale-stable anyway.
		// Explicit flags still win.
		if !set["n2"] {
			*n2 = 64
		}
		if !set["n3"] {
			*n3 = 12
		}
		if !set["n4"] {
			*n4 = 4
		}
		if !set["procs"] {
			*procs = 4
		}
		if !set["ionodes"] {
			*ionodes = 16
		}
	}

	// -trace-out / -metrics-out attach an observability sink that every
	// run mode threads through the engine, runtime and PFS simulator.
	var sink *obs.Sink
	if *traceOut != "" || *metricsOut != "" {
		sink = &obs.Sink{}
		if *traceOut != "" {
			sink.Trace = obs.NewTrace(obs.DefaultTraceCap)
		}
		if *metricsOut != "" {
			sink.Metrics = obs.NewRegistry()
		}
	}

	opts := exp.Options{
		Cfg:        suite.Config{N2: *n2, N3: *n3, N4: *n4},
		PFS:        exp.ScaledPFS(*n2, *ionodes),
		MemFrac:    *memFrac,
		Procs:      *procs,
		Workers:    *workers,
		CacheTiles: *cacheTiles,
		Obs:        sink,
	}
	if *kernels != "" {
		opts.Kernels = strings.Split(*kernels, ",")
	}
	if *compressOnly {
		for _, bc := range exp.BenchConfigs {
			if bc.Name == "engine" || bc.Compress {
				opts.Configs = append(opts.Configs, bc)
			}
		}
	}

	exitCode := 0
	switch {
	case *suiteRun:
		rep := exp.BenchSuite(opts)
		fmt.Print(rep.Render())
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			fail(err)
			fail(rep.WriteJSON(f))
			fail(f.Close())
			fmt.Printf("\nwrote %s\n", *jsonOut)
		}
		if len(rep.Failures) > 0 {
			// A failed cell must not exit 0: CI treats the suite's exit code
			// as the signal that every kernel still runs.
			for _, fl := range rep.Failures {
				fmt.Fprintf(os.Stderr, "occbench: kernel %s (%s) failed: %s\n", fl.Kernel, fl.Config, fl.Error)
			}
			exitCode = 1
		}
		if *baseline != "" {
			f, err := os.Open(*baseline)
			fail(err)
			base, err := exp.LoadBenchReport(f)
			fail(err)
			fail(f.Close())
			regs, err := exp.CompareBench(base, rep, *tolerance)
			fail(err)
			if len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "occbench: %d regression(s) vs %s (tolerance %.0f%%):\n",
					len(regs), *baseline, 100**tolerance)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "  "+r.String())
				}
				exitCode = 1
			} else {
				fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", *baseline, 100**tolerance)
			}
		}
	case *table == 2:
		res, err := exp.Table2(opts)
		fail(err)
		fmt.Printf("Table 2: execution on %d processors (col in seconds, rest %% of col)\n\n", *procs)
		fmt.Print(res.Render())
	case *table == 3:
		res, err := exp.Table3(opts, []int{16, 32, 64, 128})
		fail(err)
		fmt.Println("Table 3: speedups relative to each version's 1-processor run")
		fmt.Println()
		fmt.Print(res.Render())
	case *figure == 1:
		out, err := exp.Figure1()
		fail(err)
		fmt.Print(out)
	case *figure == 2:
		fmt.Print(exp.Figure2())
	case *figure == 3:
		res, err := exp.Figure3()
		fail(err)
		fmt.Print(res.Render())
	case *ablation == "tiling":
		rows, err := exp.TilingAblation(opts)
		fail(err)
		fmt.Println("Tiling ablation: I/O calls of the c-opt plan under both strategies")
		fmt.Printf("%-10s %14s %14s\n", "program", "traditional", "out-of-core")
		for _, r := range rows {
			fmt.Printf("%-10s %14d %14d\n", r.Kernel, r.Traditional, r.OutOfCore)
		}
	case *ablation == "memory":
		rows, err := exp.MemorySweep(opts, *kernel, nil)
		fail(err)
		fmt.Printf("Memory sweep for %s (c-opt)\n%-8s %12s %12s\n", *kernel, "1/frac", "seconds", "calls")
		for _, r := range rows {
			fmt.Printf("%-8d %12.3f %12d\n", r.Frac, r.Seconds, r.Calls)
		}
	case *ablation == "order":
		res, err := exp.OrderAblation(opts, *kernel)
		fail(err)
		fmt.Printf("Nest-order ablation for %s: cost order %d calls, reversed %d calls\n",
			res.Kernel, res.CostOrderCalls, res.ReverseOrderCalls)
	case *ablation == "storage":
		fmt.Print(exp.StorageDemo())
	case *ablation == "engine":
		// Default to a useful engine configuration, but respect an
		// explicit -workers 0 (synchronous) or -cache-tiles 0.
		if !set["cache-tiles"] {
			opts.CacheTiles = 8
		}
		if !set["workers"] {
			opts.Workers = 4
		}
		res, err := exp.EngineDemo(opts, *kernel, suite.Version(*version))
		fail(err)
		fmt.Print(res.Render())
	case *ablation == "blocked":
		rows, err := exp.BlockedAblation(*n2, nil)
		fail(err)
		fmt.Println("Blocked layouts: I/O calls to sweep all aligned BxB tiles")
		fmt.Printf("%-6s %12s %12s %12s\n", "B", "row-major", "col-major", "blocked(B)")
		for _, r := range rows {
			fmt.Printf("%-6d %12d %12d %12d\n", r.Tile, r.RowCalls, r.ColCalls, r.BlockedCalls)
		}
	case *ablation == "optimal":
		if len(opts.Kernels) == 0 {
			// The ILP search is exponential; default to the kernels whose
			// spaces stay small.
			opts.Kernels = []string{"mat", "trans", "gfunp", "htribk"}
		}
		rows, err := exp.OptimalAblation(opts)
		fail(err)
		fmt.Println("Greedy propagation (c-opt) vs ILP-optimal assignment")
		fmt.Printf("%-10s %6s %14s %14s %12s %12s\n", "program", "refs", "c-opt good", "optimal good", "c-opt score", "opt score")
		for _, r := range rows {
			fmt.Printf("%-10s %6d %14d %14d %12.2f %12.2f\n",
				r.Kernel, r.TotalRefs, r.CombinedGood, r.OptimalGood, r.CombinedScore, r.OptimalScore)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		fail(sink.Trace.WriteChrome(f))
		fail(f.Close())
		fmt.Printf("wrote %s (%d events, %d dropped; open in https://ui.perfetto.dev)\n",
			*traceOut, sink.Trace.Total()-sink.Trace.Dropped(), sink.Trace.Dropped())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fail(err)
		fail(sink.Metrics.WritePrometheus(f))
		fail(f.Close())
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	os.Exit(exitCode)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occbench:", err)
		os.Exit(1)
	}
}
