// Command occrouter is the stateless cluster router in front of a set
// of occd storage nodes: it rendezvous-hashes tile keys across the
// membership with R-way replication, answers the same tile API a
// single occd exposes, queues durable handoff hints for replicas that
// are down, and read-repairs replicas that disagree. Membership is
// static ("gossip-free"): the -peers list is the cluster.
//
//	occd -addr :9001 -cluster-node n0 &
//	occd -addr :9002 -cluster-node n1 &
//	occd -addr :9003 -cluster-node n2 &
//	occrouter -addr :8080 -replicas 2 \
//	  -peers n0=http://localhost:9001,n1=http://localhost:9002,n2=http://localhost:9003
//
// Clients talk to the router exactly as they would to one occd: the
// array and tile endpoints, /healthz, /metrics (occrouter_* and
// ooc_cluster_* families), and a /v1/stats cluster scorecard. A
// background probe loop rechecks down nodes every -probe-interval and
// drains their hint queues when they return. SIGTERM/SIGINT drain:
// the listener stops, in-flight requests finish, hint logs sync, and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"outcore/internal/cluster"
	"outcore/internal/obs"
	"outcore/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	peers := flag.String("peers", "", "cluster membership: comma-separated id=url pairs (required)")
	replicas := flag.Int("replicas", 2, "copies per tile (capped at the node count)")
	tileDim := flag.Int64("tile-dim", 8, "routing grid edge: requests decompose along this aligned tile grid")
	hintDir := flag.String("hint-dir", "", "directory for durable handoff hint logs (empty = in-memory hints)")
	noWire := flag.Bool("no-wire", false, "disable x-ooc-gorilla coding on router↔node hops")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "how often to recheck down nodes and drain owed hints")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on quorum-failure 503s")
	inflight := flag.Int("inflight", 0, "max concurrently admitted data-plane requests (0 = 4*GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth across tenant queues (0 = 256)")
	tenantWeights := flag.String("tenant-weights", "", "DRR admission weights per tenant, e.g. batch=1,interactive=4 (unlisted tenants weigh 1)")
	tenantQuotaBytes := flag.Float64("tenant-quota-bytes", 0, "per-tenant payload bytes/second budget (0 = unlimited)")
	tenantQuotaRPS := flag.Float64("tenant-quota-rps", 0, "per-tenant requests/second budget (0 = unlimited)")
	maxScanInflight := flag.Int("max-scan-inflight", 0, "per-tenant cap on in-flight scan/batch chunks (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	flag.Parse()

	nodes, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occrouter: -peers: %v\n", err)
		os.Exit(2)
	}
	weights, err := server.ParseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occrouter: -tenant-weights: %v\n", err)
		os.Exit(2)
	}

	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	r, err := cluster.NewRouter(cluster.Options{
		Nodes:       nodes,
		Replicas:    *replicas,
		TileDim:     *tileDim,
		HintDir:     *hintDir,
		NoWire:      *noWire,
		RetryAfter:  *retryAfter,
		MaxInflight: *inflight,
		QueueDepth:  *queue,
		Tenants: server.TenantConfig{
			Weights:          weights,
			QuotaBytesPerSec: *tenantQuotaBytes,
			QuotaRPS:         *tenantQuotaRPS,
			MaxScanInflight:  *maxScanInflight,
		},
		Obs: sink,
	})
	fail(err)
	hs := &http.Server{Addr: *addr, Handler: r.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Probe loop: down nodes get health-checked, catalog-synced, and
	// their hint queues drained; up nodes with residual hints drain too.
	go func() {
		t := time.NewTicker(*probeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.Probe()
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("occrouter: serving on %s (%d nodes, %d replicas)", *addr, len(nodes), r.Replicas())

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		log.Print("occrouter: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("occrouter: shutdown: %v", err)
		}
	}
	fail(r.Drain())
	log.Print("occrouter: drained; hint logs synced")
}

// parsePeers turns "n0=http://a:9001,n1=http://b:9001" into clients.
func parsePeers(s string) ([]*cluster.NodeClient, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty membership (want id=url,id=url,...)")
	}
	var nodes []*cluster.NodeClient
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q (want id=url)", part)
		}
		nodes = append(nodes, cluster.NewNodeClient(id, url))
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("empty membership (want id=url,id=url,...)")
	}
	return nodes, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occrouter:", err)
		os.Exit(1)
	}
}
