// Package outcore is a reproduction of "Compiler Optimizations for
// I/O-Intensive Computations" (Kandemir, Choudhary, Ramanujam,
// ICPP 1999): a compiler framework that optimizes out-of-core array
// programs by choosing file layouts (hyperplane-based data
// transformations) together with non-singular loop transformations,
// plus the full experimental platform the paper evaluated on — an
// out-of-core runtime, a striped parallel-file-system simulator, the
// ten benchmark kernels of Table 1, and the harness that regenerates
// every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// paper-to-module mapping, and EXPERIMENTS.md for the measured
// reproduction of each experiment.
package outcore
