// Benchmarks regenerating the paper's evaluation artifacts. One
// benchmark family per table/figure; custom metrics report the
// simulated quantities (sim-seconds, I/O calls) alongside the usual
// wall-clock numbers.
//
//	go test -bench=Table2 -benchmem         # Table 2 rows
//	go test -bench=Table3 -benchmem         # Table 3 speedups
//	go test -bench=Figure -benchmem         # Figures 1-3
//	go test -bench=. -benchmem              # everything
package outcore_test

import (
	"fmt"
	"testing"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/exp"
	"outcore/internal/fm"
	"outcore/internal/ir"
	"outcore/internal/layout"
	"outcore/internal/matrix"
	"outcore/internal/obs"
	"outcore/internal/ooc"
	"outcore/internal/pfs"
	"outcore/internal/sim"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

// benchCfg keeps the benchmark matrix affordable while preserving the
// paper's relative geometry (stripe = 2*N, 1/128 memory).
var benchCfg = suite.Config{N2: 128, N3: 16, N4: 6}

func benchSetup(k suite.Kernel, v suite.Version, procs int) sim.Setup {
	return sim.Setup{
		Kernel:  k,
		Cfg:     benchCfg,
		Version: v,
		Procs:   procs,
		PFS:     exp.ScaledPFS(benchCfg.N2, 64),
	}
}

// BenchmarkTable2 regenerates one Table-2 cell per sub-benchmark:
// kernel x version on 16 processors. The reported "sim-seconds" metric
// is the simulated execution time (the paper's measured quantity);
// "io-calls" the I/O call count.
func BenchmarkTable2(b *testing.B) {
	for _, k := range suite.Kernels {
		for _, v := range suite.Versions {
			b.Run(fmt.Sprintf("%s/%s", k.Name, v), func(b *testing.B) {
				var m sim.Measurement
				var err error
				for i := 0; i < b.N; i++ {
					m, err = sim.Run(benchSetup(k, v, 16))
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(m.Seconds, "sim-seconds")
				b.ReportMetric(float64(m.Calls), "io-calls")
			})
		}
	}
}

// BenchmarkTable3 regenerates the Table-3 speedup series for every
// kernel under the col and c-opt versions (the extremes of the paper's
// comparison) at 16..128 processors.
func BenchmarkTable3(b *testing.B) {
	procCounts := []int{16, 32, 64, 128}
	for _, k := range suite.Kernels {
		for _, v := range []suite.Version{suite.Col, suite.COpt} {
			b.Run(fmt.Sprintf("%s/%s", k.Name, v), func(b *testing.B) {
				var sp map[int]float64
				var err error
				for i := 0; i < b.N; i++ {
					sp, err = sim.Speedups(benchSetup(k, v, 1), procCounts)
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range procCounts {
					b.ReportMetric(sp[p], fmt.Sprintf("speedup-%dp", p))
				}
			})
		}
	}
}

// BenchmarkFigure1 measures the Step-1/Step-2 pipeline: normalization
// of the Figure-1 trees plus interference-graph components.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 measures layout offset/run computation across the
// Figure-2 layout gallery.
func BenchmarkFigure2(b *testing.B) {
	layouts := []*layout.Layout{
		layout.RowMajor(512, 512),
		layout.ColMajor(512, 512),
		layout.Diagonal(512, 512),
		layout.AntiDiagonal(512, 512),
		layout.Blocked(512, 512, 64, 64),
	}
	box := layout.NewBox([]int64{100, 100}, []int64{200, 200})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range layouts {
			if len(l.Runs(box)) == 0 {
				b.Fatal("no runs")
			}
		}
	}
}

// BenchmarkFigure3 regenerates the Figure-3 call-count contrast.
func BenchmarkFigure3(b *testing.B) {
	var res exp.Figure3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TraditionalTileCalls), "trad-tile-calls")
	b.ReportMetric(float64(res.OOCTileCalls), "ooc-tile-calls")
	b.ReportMetric(float64(res.ProgramTraditional), "trad-program-calls")
	b.ReportMetric(float64(res.ProgramOOC), "ooc-program-calls")
}

// BenchmarkOptimizer measures the compiler itself: the combined
// algorithm over every Table-1 kernel.
func BenchmarkOptimizer(b *testing.B) {
	for _, k := range suite.Kernels {
		b.Run(k.Name, func(b *testing.B) {
			prog := k.Build(benchCfg)
			var o core.Optimizer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if plan := o.OptimizeCombined(prog); plan == nil {
					b.Fatal("nil plan")
				}
			}
		})
	}
}

// BenchmarkTileIO measures the out-of-core runtime's tile read path for
// matched and mismatched layouts — the micro-mechanism behind every
// table.
func BenchmarkTileIO(b *testing.B) {
	const n = 512
	meta := ir.NewArray("A", n, n)
	for _, tc := range []struct {
		name string
		l    *layout.Layout
	}{
		{"row-major", layout.RowMajor(n, n)},
		{"col-major", layout.ColMajor(n, n)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d := ooc.NewDisk(8192)
			arr, err := d.CreateArray(meta, tc.l)
			if err != nil {
				b.Fatal(err)
			}
			box := layout.NewBox([]int64{0, 0}, []int64{8, n})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tile, err := arr.ReadTile(box)
				if err != nil {
					b.Fatal(err)
				}
				if err := tile.WriteTile(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Stats.Calls())/float64(2*b.N), "calls/tile")
		})
	}
}

// BenchmarkFM measures transformed-bounds enumeration, the code
// generator's inner machinery.
func BenchmarkFM(b *testing.B) {
	q := matrix.FromRows([][]int64{{0, 1}, {1, 0}})
	bounds := fm.TransformedBounds(q, []int64{0, 0}, []int64{255, 255}).Eliminate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bounds.Count() != 256*256 {
			b.Fatal("bad count")
		}
	}
}

// BenchmarkPFS measures the discrete-event simulator on a contended
// 128-processor workload.
func BenchmarkPFS(b *testing.B) {
	cfg := pfs.DefaultConfig()
	procs := make([]pfs.ProcWorkload, 128)
	for p := range procs {
		for o := 0; o < 64; o++ {
			procs[p].Ops = append(procs[p].Ops, pfs.Call("A", int64(p*64+o)*512, 512, o%4 == 3))
		}
		procs[p].ComputeSeconds = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pfs.Simulate(cfg, procs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageReduction measures the Section-3.4 shear search.
func BenchmarkStorageReduction(b *testing.B) {
	m := matrix.FromRows([][]int64{{3, 2}, {2, 0}})
	for i := 0; i < b.N; i++ {
		if _, before, after := core.ReduceStorage(m, []int64{4096, 4096}); after >= before {
			b.Fatal("no reduction")
		}
	}
}

// BenchmarkEndToEnd measures a real (non-dry) out-of-core execution of
// the quickstart program under the c-opt plan, including data movement.
func BenchmarkEndToEnd(b *testing.B) {
	const n = 128
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	prog := &ir.Program{
		Name:   "bench",
		Arrays: []*ir.Array{u, v, w},
		Nests: []*ir.Nest{
			{ID: 0, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1)),
			}},
			{ID: 1, Loops: ir.Rect(n, n), Body: []*ir.Stmt{
				ir.Assign(ir.RefIdx(v, 2, 0, 1), []ir.Ref{ir.RefIdx(w, 2, 1, 0)}, "", ir.AddConst(2)),
			}},
		},
	}
	var o core.Optimizer
	plan := o.OptimizeCombined(prog)
	budget := suite.MemBudget(prog, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := codegen.SetupDisk(prog, plan, 8192, nil)
		if err != nil {
			b.Fatal(err)
		}
		mem := ooc.NewMemory(budget)
		if _, err := codegen.RunProgram(prog, plan, d, mem, codegen.Options{
			Strategy: tiling.OutOfCore, MemBudget: budget,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineObs measures the observability tax on a data-backed
// mxm run through the concurrent tile engine: "bare" has no sink (the
// nil-guard fast path, required to stay within 2% of pre-obs cost and
// allocation-free in the emit path), "sink" records every span into a
// trace ring plus the metrics registry.
func BenchmarkEngineObs(b *testing.B) {
	k, ok := suite.ByName("mxm")
	if !ok {
		b.Fatal("mxm kernel missing")
	}
	cfg := suite.Config{N2: 64, N3: 12, N4: 4}
	run := func(b *testing.B, sink *obs.Sink) {
		prog := k.Build(cfg)
		plan, err := suite.PlanFor(prog, suite.COpt)
		if err != nil {
			b.Fatal(err)
		}
		budget := suite.MemBudget(prog, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := codegen.SetupDisk(prog, plan, 2*cfg.N2, nil)
			if err != nil {
				b.Fatal(err)
			}
			d.Observe(sink)
			eng := ooc.NewEngine(d, ooc.EngineOptions{CacheTiles: 8, Obs: sink})
			opts := codegen.Options{
				Strategy: tiling.OutOfCore, MemBudget: budget, Engine: eng, Obs: sink,
			}
			mem := ooc.NewMemory(budget)
			if _, err := codegen.RunProgram(prog, plan, d, mem, opts); err != nil {
				b.Fatal(err)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("sink", func(b *testing.B) {
		run(b, &obs.Sink{Trace: obs.NewTrace(obs.DefaultTraceCap), Metrics: obs.NewRegistry()})
	})
}
