// Integration test: the paper's whole pipeline in one pass — imperfect
// source trees through normalization, interference components, the
// combined optimizer, tiled code generation, out-of-core execution with
// verification, and finally the parallel-platform measurement.
package outcore_test

import (
	"math/rand"
	"testing"

	"outcore/internal/codegen"
	"outcore/internal/core"
	"outcore/internal/exp"
	"outcore/internal/igraph"
	"outcore/internal/ir"
	"outcore/internal/ooc"
	"outcore/internal/pfs"
	"outcore/internal/restructure"
	"outcore/internal/sim"
	"outcore/internal/suite"
	"outcore/internal/tiling"
)

func TestEndToEndPipeline(t *testing.T) {
	const n = 24
	// Step 0: an imperfect source program (Figure 1 shape).
	u := ir.NewArray("U", n, n)
	v := ir.NewArray("V", n, n)
	w := ir.NewArray("W", n, n)
	x := ir.NewArray("X", n, n)
	y := ir.NewArray("Y", n, n)
	s1 := ir.Assign(ir.RefIdx(u, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 1, 0)}, "", ir.AddConst(1))
	s2 := ir.Assign(ir.RefIdx(w, 2, 0, 1), []ir.Ref{ir.RefIdx(v, 2, 0, 1)}, "", ir.AddConst(2))
	s3 := ir.Assign(ir.RefIdx(x, 2, 0, 1), nil, "", func(_ []float64, iv []int64) float64 { return float64(iv[0] + iv[1]) })
	s4 := ir.Assign(ir.RefIdx(y, 2, 0, 1), []ir.Ref{ir.RefAffine(x, [][]int64{{1, 0}, {0, 0}}, []int64{0, 0})}, "", ir.AddConst(3))
	trees := []*restructure.Node{
		restructure.NewLoop("i", 0, n-1,
			restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s1, 2)),
			restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s2, 2)),
		),
		restructure.NewLoop("i", 0, n-1,
			restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s3, 2)),
			restructure.NewLoop("j", 0, n-1, restructure.NewStmt(s4, 2)),
		),
	}

	// Step 1: normalization.
	nests, err := restructure.Normalize(trees)
	if err != nil {
		t.Fatal(err)
	}
	prog := &ir.Program{Name: "pipeline", Nests: nests}
	seen := map[*ir.Array]bool{}
	for _, nst := range nests {
		for _, a := range nst.Arrays() {
			if !seen[a] {
				seen[a] = true
				prog.Arrays = append(prog.Arrays, a)
			}
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	// Step 2: interference components.
	comps := igraph.Build(prog).Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}

	// Step 3: the combined optimizer.
	var opt core.Optimizer
	plan := opt.OptimizeCombined(prog)
	badRefs := 0
	for _, rep := range plan.Report(prog, nil) {
		if rep.Locality == core.NoLocality {
			badRefs++
		}
	}
	// The fused first nest reads V both straight (i,j) and transposed
	// (j,i). The greedy Step-3 order fixes layouts data-only first, so
	// no row/column choice can serve both and one reference loses.
	if badRefs > 1 {
		t.Errorf("greedy left %d references without locality, want <= 1", badRefs)
	}
	// The ILP oracle, free to pick layouts and q_last together, finds
	// the skewed solution q_last = (1,-1) with anti-diagonal layouts:
	// movements (1,-1) and (-1,1) both lie in the hyperplane g = (1,1),
	// so EVERY reference gets spatial locality — a solution inside the
	// paper's linear framework that the greedy ordering cannot reach.
	var opt2 core.Optimizer
	optimal, err := opt2.OptimizeOptimal(prog)
	if err != nil {
		t.Fatal(err)
	}
	optBad := 0
	for _, rep := range optimal.Report(prog, nil) {
		if rep.Locality == core.NoLocality {
			optBad++
		}
	}
	if optBad != 0 {
		t.Errorf("ILP optimum left %d references without locality, want 0", optBad)
	}

	// Step 4: out-of-core execution + verification.
	init := ir.NewStore(prog.Arrays...)
	rng := rand.New(rand.NewSource(99))
	for _, a := range prog.Arrays {
		d := init.Data(a)
		for i := range d {
			d[i] = rng.Float64()
		}
	}
	budget := suite.MemBudget(prog, 16)
	diff, err := codegen.Verify(prog, plan, codegen.Options{
		Strategy: tiling.OutOfCore, MemBudget: budget,
	}, 128, init)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("out-of-core execution differs from reference by %g", diff)
	}

	// Step 5: the versions must order correctly on the platform.
	kernel := suite.Kernel{Name: "pipeline", Iter: 1, Build: func(suite.Config) *ir.Program { return prog }}
	times := map[suite.Version]float64{}
	for _, ver := range []suite.Version{suite.Col, suite.COpt} {
		// Fresh program per version to keep plans independent is not
		// needed here: PlanFor computes from scratch each call.
		m, err := sim.Run(sim.Setup{
			Kernel:  kernel,
			Version: ver,
			Procs:   4,
			MemFrac: 16,
			PFS:     pfs.Config{IONodes: 8, StripeElems: 2 * n, NodeOverhead: 0.006, ProcOverhead: 0.002, NodeBandwidth: 500},
		})
		if err != nil {
			t.Fatal(err)
		}
		times[ver] = m.Seconds
	}
	if times[suite.COpt] > times[suite.Col] {
		t.Errorf("c-opt %.3fs slower than col %.3fs", times[suite.COpt], times[suite.Col])
	}

	// Step 6: the Figure-3 arithmetic stays pinned.
	fig3, err := exp.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if fig3.TraditionalTileCalls != 4 || fig3.OOCTileCalls != 2 {
		t.Errorf("Figure 3 drifted: %+v", fig3)
	}
	_ = ooc.ElemSize // anchor the runtime package in this integration build
}
