# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
FUZZTIME ?= 20s

# Every fuzz target as "package:Target"; `make fuzz` loops over these,
# so adding a fuzzer is a one-line change here and zero changes in CI.
FUZZ_TARGETS := \
	./internal/layout/:FuzzRuns \
	./internal/layout/:FuzzBoxOverlaps \
	./internal/ooc/:FuzzTileKey \
	./internal/ooc/:FuzzWALRecord \
	./internal/ooc/:FuzzTileCodec \
	./internal/server/:FuzzScanCursor \
	./internal/server/:FuzzBatchRequest \
	./internal/server/:FuzzTenantHeader

.PHONY: build test race check fuzz vet fmt cover suite baseline load sweep walsweep compsweep clustersweep opsweep mtsweep chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tile engine is concurrent; the race detector is part of the gate,
# not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

# Short fuzzing sessions over the property targets. CI runs these
# briefly; use FUZZTIME=5m locally for a deeper soak. Seed corpora are
# checked in under testdata/fuzz/<Target>/; new crashers land there too.
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "== fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test $$pkg -fuzz "^$$target\$$" -fuzztime $(FUZZTIME); \
	done

# Total statement coverage; CI enforces a floor on this number.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The benchmark suite CI gates against BENCH_baseline.json.
suite:
	$(GO) run ./cmd/occbench -suite -json BENCH_current.json -baseline BENCH_baseline.json

# Regenerate the checked-in baseline (after an intentional perf change).
baseline:
	$(GO) run ./cmd/occbench -suite -json BENCH_baseline.json

# Serving-path load harness: in-process tile server + zipf clients.
load:
	$(GO) run ./cmd/occload -kernel trans -version c-opt \
		-clients 16 -requests 4000 -zipf 1.2

# Shard sweep: the identical read-heavy workload once per shard count,
# reporting throughput vs N. This is the recipe whose rows ride in
# BENCH_baseline.json (informational — serving rows never gate).
sweep:
	$(GO) run ./cmd/occload -kernel trans -version c-opt \
		-clients 32 -read-frac 1 -requests 100000 -shard-sweep 1,2,4,8

# WAL ack-latency sweep: the identical write-heavy durable-PUT workload
# with per-PUT fsyncs and then with the group-committed WAL. The
# acked-PUT p50/p99 split in the scorecard is the WAL's win; these are
# the serve-*-dp / serve-*-dp-wal rows in BENCH_baseline.json (also
# informational — serving rows never gate).
WALSWEEP_DIR ?= /tmp/occ-walsweep
walsweep:
	rm -rf $(WALSWEEP_DIR)
	$(GO) run ./cmd/occload -kernel trans -version c-opt -clients 32 \
		-read-frac 0.2 -requests 16000 -zipf 1 -shards 4 \
		-dir $(WALSWEEP_DIR)/sync -durable-puts
	$(GO) run ./cmd/occload -kernel trans -version c-opt -clients 32 \
		-read-frac 0.2 -requests 16000 -zipf 1 -shards 4 \
		-dir $(WALSWEEP_DIR)/wal -durable-puts -wal

# Compression sweep: the focused engine / engine-compress bench leg
# (bytes_disk_raw vs bytes_disk is the on-disk reduction, allocs_per_get
# must be 0), then the identical zipf load with and without the
# x-ooc-gorilla wire encoding (bytes_wire_raw vs bytes_wire is the
# on-wire reduction). CI gates both at 2x; see the "Compression gate"
# step in ci.yml.
compsweep:
	$(GO) run ./cmd/occbench -suite -compress -json BENCH_comp.json
	$(GO) run ./cmd/occload -kernel trans -version c-opt \
		-clients 16 -requests 4000 -zipf 1.2
	$(GO) run ./cmd/occload -kernel trans -version c-opt \
		-clients 16 -requests 4000 -zipf 1.2 -compress -json LOAD_comp.json

# Cluster node sweep: the identical workload through an in-process
# router + N occd nodes for N=1,2,3 (capacity-bound per-node caches,
# uniform tile choice, so aggregate cache — and throughput — climb
# with N), then the replicated n3-r2 shape whose row carries the
# handoff/read-repair counters. These are the serve-cluster-n<N>-r<R>
# rows in BENCH_baseline.json (informational — serving rows never
# gate).
clustersweep:
	$(GO) run ./cmd/occload -nodes 1,2,3 -replicas 1 -requests 8000 \
		-clients 32 -tile-edge 8 -cache-tiles 16 -zipf 1 -workers 0
	$(GO) run ./cmd/occload -nodes 3 -replicas 2 -requests 8000 \
		-clients 32 -tile-edge 8 -cache-tiles 16 -zipf 1 -workers 0

# Operator sweep: the batched & streaming operator scenarios. The
# scan-heavy pass streams layout-aware range scans over whole tile
# stripes in open-loop arrival mode (latency measured from scheduled
# arrivals — no coordinated omission) and the write-heavy pass moves 8
# tiles per batch PUT. These are the serve-scan-* / serve-batch-* rows
# in BENCH_baseline.json; CI gates serve-scan rows at a >=5x
# round-trip reduction vs point GETs (see "Operator round-trip gate"
# in ci.yml), the batch rows ride along informationally.
opsweep:
	$(GO) run ./cmd/occload -kernel trans -version c-opt -clients 16 \
		-requests 4000 -tile-edge 8 -scenario scan-heavy \
		-arrival-rate 20000 -json LOAD_scan.json
	$(GO) run ./cmd/occload -kernel trans -version c-opt -clients 16 \
		-requests 4000 -tile-edge 8 -scenario write-heavy \
		-json LOAD_batch.json

# Multi-tenant fairness sweep: the two-tenant scenario — an
# interactive point tenant (DRR weight 4) vs an aggressive streaming
# scanner (weight 1, chunk-capped) on one shared server. The point
# tenant runs solo first, then contended; both p99s land in the
# serve-mt-*-point row and CI's "Fairness gate" requires contended
# <= 2x solo. These are the serve-mt-* rows in BENCH_baseline.json
# (the latency ratio gates, the throughput rides informationally).
mtsweep:
	$(GO) run ./cmd/occload -kernel trans -version c-opt -clients 8 \
		-requests 4000 -tile-edge 8 -scenario multi-tenant \
		-json LOAD_mt.json

# Deterministic chaos sweep: the dst/faultfs test suites under -race,
# then CHAOS_EPISODES seeded simulation episodes (power cuts, torn
# writes, failing syncs). A failing episode prints its reproducer
# seed. Nightly CI runs this plus one random seed.
CHAOS_EPISODES ?= 50
chaos:
	$(GO) test -race ./internal/dst/ ./internal/faultfs/
	$(GO) run ./cmd/occhaos -episodes $(CHAOS_EPISODES)
	$(GO) run ./cmd/occhaos -episodes $(CHAOS_EPISODES) -shards 4 -wal
	$(GO) run ./cmd/occhaos -episodes $(CHAOS_EPISODES) -shards 4 -wal -compress
	$(GO) run ./cmd/occhaos -cluster -episodes $(CHAOS_EPISODES) -nodes 3 -replicas 2
	$(GO) run ./cmd/occhaos -tenants -episodes $(CHAOS_EPISODES) -nodes 3 -replicas 2

fmt:
	gofmt -l -w .
