# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
FUZZTIME ?= 20s

.PHONY: build test race check fuzz vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tile engine is concurrent; the race detector is part of the gate,
# not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

# Short fuzzing sessions over the property targets. CI runs these
# briefly; use FUZZTIME=5m locally for a deeper soak.
fuzz:
	$(GO) test ./internal/layout/ -fuzz FuzzRuns -fuzztime $(FUZZTIME)
	$(GO) test ./internal/layout/ -fuzz FuzzBoxOverlaps -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ooc/ -fuzz FuzzTileKey -fuzztime $(FUZZTIME)

fmt:
	gofmt -l -w .
